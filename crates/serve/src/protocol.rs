//! The `slapd` wire protocol: framed-PBM jobs in, typed responses out.
//!
//! Requests reuse the existing framed-PBM format unchanged
//! ([`slap_image::pbm::write_framed`] / [`slap_image::pbm::FramedPbmReader`]):
//! a client connection is a sequence of `<decimal length>\n<raw P4 PBM>`
//! job frames. Responses are one record per job, in submission order:
//!
//! ```text
//! OK <rows> <cols> <components> <payload_len>\n<payload_len bytes>
//! ERR <code> <detail>\n
//! ```
//!
//! The `OK` payload is the label grid, row-major, one little-endian `u32`
//! per pixel (background = `u32::MAX`), bit-identical to the fast engine.
//! `ERR` codes are the closed [`WireError`] taxonomy — a client can branch
//! on the code (retry on `queue-full`, give up on `too-large`) without
//! parsing prose.

use slap_image::pbm::PbmError;
use std::io::{self, BufRead, Write};

/// Hard cap on an `OK` payload a client will buffer (bytes). The label grid
/// of the largest admissible job (`rows × cols < u32::MAX` pixels) fits; a
/// lying header above it is rejected before any allocation.
pub const MAX_PAYLOAD_BYTES: u64 = (u32::MAX as u64) * 4;

/// Cap on a response header line; anything longer is a protocol violation,
/// not a response.
const MAX_HEADER_BYTES: usize = 256;

/// The closed set of typed job-rejection codes `slapd` can answer with.
///
/// Every guard in the service maps to exactly one code, so the chaos suite
/// (and real clients) can assert on *which* defense fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireError {
    /// The job frame did not parse as framed PBM (bad magic, bad dims,
    /// truncated raster, lying length prefix, garbage bytes...).
    BadFrame,
    /// The image exceeds the server's dimension or pixel budget.
    TooLarge,
    /// `rows × cols` overflows the label space (`u32`) or `usize`.
    Overflow,
    /// The bounded job queue is full — backpressure, resubmit later.
    QueueFull,
    /// The job missed its wall-clock deadline (queued too long, stalled
    /// ingest, or slow compute).
    Deadline,
    /// The job panicked inside the engine; it was isolated and the worker
    /// session rebuilt. The server is still healthy.
    Panic,
    /// The server is draining and accepts no new jobs.
    Shutdown,
}

impl WireError {
    /// Every code, in wire order.
    pub const ALL: [WireError; 7] = [
        WireError::BadFrame,
        WireError::TooLarge,
        WireError::Overflow,
        WireError::QueueFull,
        WireError::Deadline,
        WireError::Panic,
        WireError::Shutdown,
    ];

    /// The stable wire token for this code.
    pub fn code(self) -> &'static str {
        match self {
            WireError::BadFrame => "bad-frame",
            WireError::TooLarge => "too-large",
            WireError::Overflow => "overflow",
            WireError::QueueFull => "queue-full",
            WireError::Deadline => "deadline",
            WireError::Panic => "panic",
            WireError::Shutdown => "shutdown",
        }
    }

    /// Parses a wire token as produced by [`WireError::code`].
    pub fn parse(s: &str) -> Option<WireError> {
        WireError::ALL.into_iter().find(|e| e.code() == s)
    }

    /// Whether an idempotent client should resubmit after this rejection:
    /// transient conditions (load, drain, a one-off panic) are retryable;
    /// verdicts about the job itself are not.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            WireError::QueueFull | WireError::Deadline | WireError::Panic | WireError::Shutdown
        )
    }

    /// Maps a structured PBM parse failure to its wire code: dimension
    /// overflow keeps its own code, every other malformation is `bad-frame`.
    pub fn from_pbm(e: &PbmError) -> WireError {
        match e {
            PbmError::DimsOverflow { .. } => WireError::Overflow,
            _ => WireError::BadFrame,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A successful job reply: the labeled grid plus its summary numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOk {
    /// Image height.
    pub rows: usize,
    /// Image width.
    pub cols: usize,
    /// Connected components found.
    pub components: usize,
    /// Row-major per-pixel labels (background = `u32::MAX`), bit-identical
    /// to the fast engine's `LabelGrid`.
    pub labels: Vec<u32>,
}

/// One parsed server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The job was labeled.
    Ok(JobOk),
    /// The job was rejected with a typed code.
    Rejected {
        /// The typed rejection code.
        code: WireError,
        /// Human-readable detail (single line, diagnostic only).
        detail: String,
    },
}

/// Writes an `OK` response. `scratch` is the caller's reusable byte buffer
/// for the payload encoding (cleared here), so a warm connection thread
/// serializes without reallocating.
pub fn write_ok<W: Write>(
    w: &mut W,
    rows: usize,
    cols: usize,
    components: usize,
    labels: &[u32],
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    let payload_len = labels.len() * 4;
    writeln!(w, "OK {rows} {cols} {components} {payload_len}")?;
    scratch.clear();
    scratch.reserve(payload_len);
    for &label in labels {
        scratch.extend_from_slice(&label.to_le_bytes());
    }
    w.write_all(scratch)?;
    w.flush()
}

/// Writes an `ERR` response. Newlines in `detail` are flattened so the
/// record stays one line.
pub fn write_err<W: Write>(w: &mut W, code: WireError, detail: &str) -> io::Result<()> {
    let detail: String = detail
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    writeln!(w, "ERR {} {detail}", code.code())?;
    w.flush()
}

/// Reads one response header line (bytes up to `\n`, bounded). `Ok(None)`
/// at a clean end of stream before any byte.
fn read_header_line<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "response header truncated",
                    ))
                }
            }
            Ok(_) if b[0] == b'\n' => break,
            Ok(_) => {
                if line.len() >= MAX_HEADER_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response header too long",
                    ));
                }
                line.push(b[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response header is not UTF-8"))
}

/// Reads one server response. `Ok(None)` at a clean end of stream (the
/// server closed between responses). The payload is read in bounded chunks,
/// so a lying payload length costs only the bytes that actually arrive.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Option<Response>> {
    let Some(line) = read_header_line(r)? else {
        return Ok(None);
    };
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{msg}: {line:?}"));
    let mut parts = line.splitn(5, ' ');
    match parts.next() {
        Some("OK") => {
            let mut num = |name: &str| -> io::Result<u64> {
                parts
                    .next()
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| bad(&format!("bad {name} in OK header")))
            };
            let rows = num("rows")?;
            let cols = num("cols")?;
            let components = num("components")?;
            let payload_len = num("payload length")?;
            let pixels = rows
                .checked_mul(cols)
                .filter(|&px| px * 4 == payload_len && payload_len <= MAX_PAYLOAD_BYTES)
                .ok_or_else(|| bad("payload length disagrees with dims"))?;
            let mut labels = Vec::with_capacity(0);
            let mut chunk = [0u8; 64 * 1024];
            let mut remaining = payload_len as usize;
            let mut carry: Vec<u8> = Vec::with_capacity(4);
            labels.reserve(pixels.min(1 << 20) as usize);
            while remaining > 0 {
                let want = remaining.min(chunk.len());
                match r.read(&mut chunk[..want]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("response payload truncated: {remaining} bytes missing"),
                        ))
                    }
                    Ok(got) => {
                        remaining -= got;
                        let mut bytes = &chunk[..got];
                        // Finish a u32 straddling the previous chunk first.
                        while !carry.is_empty() && !bytes.is_empty() {
                            carry.push(bytes[0]);
                            bytes = &bytes[1..];
                            if carry.len() == 4 {
                                labels.push(u32::from_le_bytes([
                                    carry[0], carry[1], carry[2], carry[3],
                                ]));
                                carry.clear();
                            }
                        }
                        let whole = bytes.len() / 4 * 4;
                        for quad in bytes[..whole].chunks_exact(4) {
                            labels.push(u32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]));
                        }
                        carry.extend_from_slice(&bytes[whole..]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            debug_assert!(carry.is_empty(), "payload length is a multiple of 4");
            Ok(Some(Response::Ok(JobOk {
                rows: rows as usize,
                cols: cols as usize,
                components: components as usize,
                labels,
            })))
        }
        Some("ERR") => {
            let code = parts
                .next()
                .and_then(WireError::parse)
                .ok_or_else(|| bad("unknown ERR code"))?;
            let detail = parts.collect::<Vec<_>>().join(" ");
            Ok(Some(Response::Rejected { code, detail }))
        }
        _ => Err(bad("unrecognized response header")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_response_roundtrips() {
        let labels = vec![0u32, u32::MAX, 7, 0xdead_beef];
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_ok(&mut buf, 2, 2, 2, &labels, &mut scratch).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        match read_response(&mut r).unwrap().unwrap() {
            Response::Ok(ok) => {
                assert_eq!((ok.rows, ok.cols, ok.components), (2, 2, 2));
                assert_eq!(ok.labels, labels);
            }
            other => panic!("expected OK, got {other:?}"),
        }
        assert!(read_response(&mut r).unwrap().is_none(), "clean end");
    }

    #[test]
    fn err_response_roundtrips_every_code() {
        for code in WireError::ALL {
            let mut buf = Vec::new();
            write_err(&mut buf, code, "detail\nwith newline").unwrap();
            let mut r = io::BufReader::new(&buf[..]);
            match read_response(&mut r).unwrap().unwrap() {
                Response::Rejected { code: got, detail } => {
                    assert_eq!(got, code);
                    assert!(!detail.contains('\n'), "{detail:?}");
                }
                other => panic!("expected ERR, got {other:?}"),
            }
            assert_eq!(WireError::parse(code.code()), Some(code));
        }
        assert_eq!(WireError::parse("nope"), None);
    }

    #[test]
    fn lying_ok_header_is_rejected_without_allocation() {
        // Payload length that disagrees with dims.
        let mut r = io::BufReader::new(&b"OK 2 2 1 999\n"[..]);
        assert!(read_response(&mut r).is_err());
        // Dims product overflowing u64.
        let huge = format!("OK {} {} 1 16\n", u64::MAX, u64::MAX);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert!(read_response(&mut r).is_err());
        // Truncated payload costs only the bytes that arrived.
        let mut r = io::BufReader::new(&b"OK 2 2 1 16\n\x01\x00"[..]);
        let err = read_response(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_header_is_a_protocol_error() {
        let mut r = io::BufReader::new(&b"HELLO world\n"[..]);
        assert_eq!(
            read_response(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut r = io::BufReader::new(&b"ERR not-a-code x\n"[..]);
        assert!(read_response(&mut r).is_err());
    }

    #[test]
    fn retryable_codes_are_the_transient_ones() {
        assert!(WireError::QueueFull.retryable());
        assert!(WireError::Deadline.retryable());
        assert!(WireError::Shutdown.retryable());
        assert!(WireError::Panic.retryable());
        assert!(!WireError::BadFrame.retryable());
        assert!(!WireError::TooLarge.retryable());
        assert!(!WireError::Overflow.retryable());
    }

    #[test]
    fn pbm_taxonomy_maps_to_wire_codes() {
        assert_eq!(
            WireError::from_pbm(&PbmError::DimsOverflow { rows: 9, cols: 9 }),
            WireError::Overflow
        );
        assert_eq!(
            WireError::from_pbm(&PbmError::TruncatedHeader),
            WireError::BadFrame
        );
        assert_eq!(
            WireError::from_pbm(&PbmError::LyingLengthPrefix { declared: 1 }),
            WireError::BadFrame
        );
    }
}
