//! A bounded MPMC job queue with byte-weight accounting and drain support.
//!
//! This is the backpressure point of `slapd`: the acceptor side calls
//! [`BoundedQueue::try_push`] and gets an immediate typed rejection when
//! either the item cap or the byte budget is exhausted — the queue never
//! grows without bound, so a flood of jobs degrades into `queue-full`
//! rejections instead of memory exhaustion. Workers block in
//! [`BoundedQueue::pop`]; after [`BoundedQueue::drain`] they wake, finish
//! whatever is queued, and get `None`.
//!
//! All locking is poison-tolerant: a panic while the mutex is held (which
//! cannot happen in this module's own code paths, but costs nothing to
//! defend against) does not wedge the queue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why [`BoundedQueue::try_push`] refused an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushRejection {
    /// The item cap or byte budget is exhausted — backpressure.
    Full,
    /// The queue is draining and accepts nothing new.
    Draining,
}

struct Inner<T> {
    items: VecDeque<(T, usize)>,
    weight: usize,
    draining: bool,
    peak_items: usize,
    peak_weight: usize,
}

/// A bounded multi-producer multi-consumer FIFO with two admission caps:
/// a maximum item count and a maximum total weight (bytes, for `slapd`).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap_items: usize,
    cap_weight: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `cap_items` items and at most
    /// `cap_weight` total weight at any instant. Both caps must be nonzero.
    pub fn new(cap_items: usize, cap_weight: usize) -> Self {
        assert!(
            cap_items > 0 && cap_weight > 0,
            "queue caps must be nonzero"
        );
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                weight: 0,
                draining: false,
                peak_items: 0,
                peak_weight: 0,
            }),
            not_empty: Condvar::new(),
            cap_items,
            cap_weight,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to enqueue `item` with the given weight. A single item
    /// heavier than the whole budget is still admitted when the queue is
    /// empty (otherwise it could never run); beyond that, admission never
    /// exceeds either cap. On rejection the item is handed back.
    pub fn try_push(&self, item: T, weight: usize) -> Result<(), (T, PushRejection)> {
        let mut inner = self.lock();
        if inner.draining {
            return Err((item, PushRejection::Draining));
        }
        let over_weight = inner.weight.saturating_add(weight) > self.cap_weight;
        if inner.items.len() >= self.cap_items || (over_weight && !inner.items.is_empty()) {
            return Err((item, PushRejection::Full));
        }
        inner.weight += weight;
        inner.items.push_back((item, weight));
        inner.peak_items = inner.peak_items.max(inner.items.len());
        inner.peak_weight = inner.peak_weight.max(inner.weight);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is draining and empty — the worker
    /// shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some((item, weight)) = inner.items.pop_front() {
                inner.weight -= weight;
                return Some(item);
            }
            if inner.draining {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Flips the queue into drain mode: new pushes are rejected, blocked
    /// poppers wake, and once the backlog is consumed every `pop` returns
    /// `None`.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.not_empty.notify_all();
    }

    /// Removes every queued item matching `expired`, handing each to
    /// `on_reject` with the lock already released, so the callback may
    /// itself touch the queue's users (the deadline watchdog does).
    pub fn reject_if(&self, mut expired: impl FnMut(&T) -> bool, mut on_reject: impl FnMut(T)) {
        let rejected: Vec<T> = {
            let mut inner = self.lock();
            let mut kept = VecDeque::with_capacity(inner.items.len());
            let mut out = Vec::new();
            while let Some((item, weight)) = inner.items.pop_front() {
                if expired(&item) {
                    inner.weight -= weight;
                    out.push(item);
                } else {
                    kept.push_back((item, weight));
                }
            }
            inner.items = kept;
            out
        };
        for item in rejected {
            on_reject(item);
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water marks: (most items queued at once, most weight held at
    /// once) over the queue's lifetime.
    pub fn peaks(&self) -> (usize, usize) {
        let inner = self.lock();
        (inner.peak_items, inner.peak_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn item_cap_applies_backpressure() {
        let q = BoundedQueue::new(2, usize::MAX);
        q.try_push(1, 1).unwrap();
        q.try_push(2, 1).unwrap();
        let (item, why) = q.try_push(3, 1).unwrap_err();
        assert_eq!((item, why), (3, PushRejection::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3, 1).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn weight_cap_applies_backpressure_but_admits_a_lone_giant() {
        let q = BoundedQueue::new(16, 100);
        // A single item over budget is admitted when the queue is empty.
        q.try_push("giant", 1000).unwrap();
        let (_, why) = q.try_push("next", 1).unwrap_err();
        assert_eq!(why, PushRejection::Full);
        assert_eq!(q.pop(), Some("giant"));
        q.try_push("a", 60).unwrap();
        q.try_push("b", 40).unwrap();
        let (_, why) = q.try_push("c", 1).unwrap_err();
        assert_eq!(why, PushRejection::Full);
    }

    #[test]
    fn drain_rejects_new_and_flushes_backlog() {
        let q = BoundedQueue::new(8, 1 << 20);
        q.try_push(1, 1).unwrap();
        q.try_push(2, 1).unwrap();
        q.drain();
        let (_, why) = q.try_push(3, 1).unwrap_err();
        assert_eq!(why, PushRejection::Draining);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "drained queue stays drained");
    }

    #[test]
    fn drain_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4, 64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7, 1).unwrap();
        q.drain();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn reject_if_sweeps_matching_items_and_restores_weight() {
        let q = BoundedQueue::new(8, 100);
        for i in 0..4 {
            q.try_push(i, 20).unwrap();
        }
        let mut swept = Vec::new();
        q.reject_if(|&i| i % 2 == 1, |i| swept.push(i));
        assert_eq!(swept, vec![1, 3]);
        assert_eq!(q.len(), 2);
        // The freed weight is reusable.
        q.try_push(10, 40).unwrap();
        let (peak_items, peak_weight) = q.peaks();
        assert_eq!(peak_items, 4);
        assert_eq!(peak_weight, 80);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(4, 1 << 20));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        for i in 1..=100u64 {
            loop {
                match q.try_push(i, 8) {
                    Ok(()) => {
                        pushed += i;
                        break;
                    }
                    Err(_) => thread::yield_now(),
                }
            }
        }
        q.drain();
        let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(consumed, pushed);
    }
}
