//! Criterion bench: full Algorithm CC simulation against the sequential
//! labelers (wall-clock companion to experiments E1/E3/E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slap_baselines::{divide_conquer_labels, scanline_labels, two_pass_labels};
use slap_cc::{label_components_kind, CcOptions};
use slap_image::{bfs_labels, gen};
use slap_unionfind::UfKind;

fn bench_cc(c: &mut Criterion) {
    let n = 128;
    let img = gen::uniform_random(n, n, 0.5, 42);
    let mut g = c.benchmark_group("cc_end_to_end");
    for &kind in &[
        UfKind::Tarjan,
        UfKind::RankHalving,
        UfKind::Blum,
        UfKind::IdealO1,
    ] {
        g.bench_with_input(
            BenchmarkId::new("algorithm_cc", kind.name()),
            &kind,
            |b, &k| b.iter(|| label_components_kind(&img, k, &CcOptions::default())),
        );
    }
    g.bench_function("oracle_bfs", |b| b.iter(|| bfs_labels(&img)));
    g.bench_function("two_pass", |b| b.iter(|| two_pass_labels(&img)));
    g.bench_function("scanline", |b| b.iter(|| scanline_labels(&img)));
    g.bench_function("divide_conquer", |b| b.iter(|| divide_conquer_labels(&img)));
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let n = 128;
    let mut g = c.benchmark_group("cc_by_workload");
    for name in ["random50", "comb", "fig3a", "tournament", "maze"] {
        let img = gen::by_name(name, n, 7).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &img, |b, img| {
            b.iter(|| label_components_kind(img, UfKind::Tarjan, &CcOptions::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cc, bench_workloads);
criterion_main!(benches);
