//! Criterion bench: raw union–find operation throughput per implementation
//! (the wall-clock companion to experiment E10a's unit-cost table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slap_unionfind::UfKind;

fn tournament(kind: UfKind, n: usize) -> u64 {
    let mut uf = kind.build(n);
    let mut stride = 1usize;
    while stride < n {
        let mut base = 0usize;
        while base + stride < n {
            uf.union(base, base + stride);
            base += 2 * stride;
        }
        stride *= 2;
    }
    let mut acc = 0u64;
    for x in (0..n).step_by(7) {
        acc ^= uf.find(x) as u64;
    }
    acc
}

fn chain(kind: UfKind, n: usize) -> u64 {
    let mut uf = kind.build(n);
    for x in 0..n - 1 {
        uf.union(x, x + 1);
    }
    uf.find(0) as u64
}

fn bench_uf(c: &mut Criterion) {
    let n = 1 << 14;
    let mut g = c.benchmark_group("uf_tournament");
    for &kind in UfKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| tournament(k, n))
        });
    }
    g.finish();
    let mut g = c.benchmark_group("uf_chain");
    for &kind in UfKind::ALL {
        if kind == UfKind::QuickFind {
            continue; // chain unions are quickfind's quadratic worst case
        }
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| chain(k, n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uf);
criterion_main!(benches);
