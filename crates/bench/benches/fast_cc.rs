//! Criterion microbenches for the word-parallel fast engine: oracle vs.
//! fast engine vs. simulated run-based Algorithm CC on the baseline
//! workloads, at bench-friendly sizes. The full wall-clock trajectory lives
//! in `slap-bench baseline` (`BENCH_baseline.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slap_cc::{label_components_runs, CcOptions};
use slap_image::{bfs_labels, fast::FastLabeler, gen, Connectivity, LabelGrid};
use slap_unionfind::RankHalvingUf;

fn bench_fast_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_cc");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        for family in ["random50", "blobs"] {
            let img = gen::by_name(family, n, 1).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("oracle-bfs/{family}"), n),
                &img,
                |b, img| b.iter(|| bfs_labels(img)),
            );
            let mut fast = FastLabeler::new();
            let mut grid = LabelGrid::new_background(1, 1);
            group.bench_with_input(
                BenchmarkId::new(format!("fast/{family}"), n),
                &img,
                |b, img| b.iter(|| fast.label_into(img, Connectivity::Four, &mut grid)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("slap-sim-runs/{family}"), n),
                &img,
                |b, img| {
                    b.iter(|| label_components_runs::<RankHalvingUf>(img, &CcOptions::default()))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fast_cc);
criterion_main!(benches);
