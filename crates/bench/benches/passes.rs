//! Criterion bench: the individual pass kernels and the Corollary 4 folds
//! (wall-clock companions to experiments E7/E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slap_cc::aggregate::{component_fold, MinFold, SumFold};
use slap_cc::bitserial::label_components_bitserial;
use slap_cc::{label_components, CcOptions};
use slap_image::{bfs_labels, gen};
use slap_unionfind::TarjanUf;

fn bench_variants(c: &mut Criterion) {
    let n = 128;
    let img = gen::double_comb(n, n, 2);
    let variants: [(&str, CcOptions); 4] = [
        ("baseline", CcOptions::default()),
        (
            "eager",
            CcOptions {
                eager_forward: true,
                ..CcOptions::default()
            },
        ),
        (
            "idle",
            CcOptions {
                idle_compression: true,
                ..CcOptions::default()
            },
        ),
        (
            "eager+idle",
            CcOptions {
                eager_forward: true,
                idle_compression: true,
                ..CcOptions::default()
            },
        ),
    ];
    let mut g = c.benchmark_group("cc_variants_comb");
    for (name, opts) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, o| {
            b.iter(|| label_components::<TarjanUf>(&img, o))
        });
    }
    g.finish();
}

fn bench_folds(c: &mut Criterion) {
    let n = 128;
    let img = gen::blobs(n, n, n / 4 + 1, 8, 3);
    let labels = bfs_labels(&img);
    let rows = img.rows();
    let mut g = c.benchmark_group("corollary4_folds");
    g.bench_function("min_positions", |b| {
        b.iter(|| component_fold::<MinFold>(&img, &labels, &move |r, c| (c * rows + r) as u64))
    });
    g.bench_function("sum_sizes", |b| {
        b.iter(|| component_fold::<SumFold>(&img, &labels, &|_, _| 1u64))
    });
    g.finish();
}

fn bench_bitserial(c: &mut Criterion) {
    let n = 128;
    let img = gen::even_rows_random(n, n, 5);
    let mut g = c.benchmark_group("theorem5_bitserial");
    g.bench_function("word_links", |b| {
        b.iter(|| label_components::<TarjanUf>(&img, &CcOptions::default()))
    });
    g.bench_function("bit_links", |b| {
        b.iter(|| {
            label_components_bitserial(&img, slap_unionfind::UfKind::Tarjan, &CcOptions::default())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_variants, bench_folds, bench_bitserial);
criterion_main!(benches);
