//! Criterion bench: the extension ablations (wall-clock companions to
//! experiments E13–E15) — run-length vs per-pixel representation,
//! 8-connectivity overhead, feature folds, and the hypercube baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypercube_machine::sv_labels;
use slap_cc::features::{component_features, euler_number};
use slap_cc::{label_components, label_components_runs, CcOptions, Connectivity};
use slap_image::{bfs_labels, gen};
use slap_unionfind::TarjanUf;

fn bench_runs_vs_pixels(c: &mut Criterion) {
    let n = 128;
    let mut g = c.benchmark_group("runs_vs_pixels");
    for workload in ["vstripes", "random50", "blobs"] {
        let img = gen::by_name(workload, n, 11).unwrap();
        g.bench_with_input(BenchmarkId::new("pixels", workload), &img, |b, img| {
            b.iter(|| label_components::<TarjanUf>(img, &CcOptions::default()))
        });
        g.bench_with_input(BenchmarkId::new("runs", workload), &img, |b, img| {
            b.iter(|| label_components_runs::<TarjanUf>(img, &CcOptions::default()))
        });
    }
    g.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let n = 128;
    let img = gen::by_name("maze", n, 11).unwrap();
    let mut g = c.benchmark_group("connectivity");
    for conn in [Connectivity::Four, Connectivity::Eight] {
        let opts = CcOptions {
            connectivity: conn,
            ..CcOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(conn.name()), &opts, |b, o| {
            b.iter(|| label_components::<TarjanUf>(&img, o))
        });
    }
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let n = 128;
    let img = gen::blobs(n, n, n / 4 + 1, 8, 3);
    let labels = bfs_labels(&img);
    let mut g = c.benchmark_group("features");
    g.bench_function("component_features", |b| {
        b.iter(|| component_features(&img, &labels, Connectivity::Four))
    });
    g.bench_function("euler_number", |b| {
        b.iter(|| euler_number(&img, Connectivity::Four))
    });
    g.finish();
}

fn bench_hypercube(c: &mut Criterion) {
    let mut g = c.benchmark_group("hypercube_sv");
    for n in [32usize, 64] {
        let img = gen::serpentine(n, n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &img, |b, img| {
            b.iter(|| sv_labels(img))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_runs_vs_pixels,
    bench_connectivity,
    bench_features,
    bench_hypercube
);
criterion_main!(benches);
