//! Criterion bench: simulator executor overheads — virtual-time pipeline vs
//! lock-step, and lock-step sequential vs threaded (experiment E11's
//! wall-clock companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slap_baselines::naive_slap::naive_slap_lockstep;
use slap_image::gen;
use slap_machine::{run_pipeline, PeCtx};

fn bench_pipeline_executor(c: &mut Criterion) {
    // relay chain: measures per-message executor overhead
    let mut g = c.benchmark_group("pipeline_executor");
    for n in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("relay", n), &n, |b, &n| {
            b.iter(|| {
                run_pipeline(n, |pe, ctx: &mut PeCtx<u64>| {
                    while let Some(m) = ctx.recv() {
                        ctx.send(m);
                    }
                    ctx.send(pe as u64);
                })
            })
        });
    }
    g.finish();
}

fn bench_lockstep_threads(c: &mut Criterion) {
    let n = 128;
    let rounds = 16u32;
    let img = gen::double_comb(n, n, 2);
    let mut g = c.benchmark_group("lockstep_naive_pe");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| naive_slap_lockstep(&img, rounds, t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline_executor, bench_lockstep_threads);
criterion_main!(benches);
