//! The E1–E11 experiment implementations. See DESIGN.md §4 for the mapping
//! from paper claims to experiments and EXPERIMENTS.md for recorded results.

use crate::table::{f2, f3, Table};
use crate::Scale;
use slap_baselines::mesh::{levialdi_count, mesh_min_propagation};
use slap_baselines::{divide_conquer_labels, naive_slap_labels};
use slap_cc::aggregate::{component_fold, MaxFold, MinFold, SumFold};
use slap_cc::bitserial::{entropy_report, label_components_bitserial, message_bits};
use slap_cc::{label_components, label_components_kind, CcOptions, CcRun};
use slap_image::{gen, Bitmap};
use slap_unionfind::{BlumUf, TarjanUf, UfKind, UnionFind};

fn cc(img: &Bitmap, kind: UfKind) -> CcRun {
    label_components_kind(img, kind, &CcOptions::default())
}

fn lg(x: f64) -> f64 {
    x.log2()
}

/// `n · lg n / lg lg n`, the Theorem 3 bound shape.
fn theorem3_shape(n: f64) -> f64 {
    n * lg(n) / lg(lg(n))
}

/// E1 — Lemma 1/2: with O(1)-cost union–find, Algorithm CC is O(n).
/// `steps/n` must stay flat across the sweep for every image family.
pub fn e1(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E1 (Lemma 1/2): Algorithm CC with unit-cost union-find",
        &["workload", "n", "total steps", "steps/n"],
    );
    for name in ["random50", "fig3a", "comb", "tournament", "evenrows"] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let run = cc(&img, UfKind::IdealO1);
            let steps = run.metrics.total_steps;
            t.push_row(vec![
                name.into(),
                n.to_string(),
                steps.to_string(),
                f2(steps as f64 / n as f64),
            ]);
        }
    }
    t.note("Claim: O(n) total under the constant-time union-find assumption (Lemma 2). Flat steps/n per workload reproduces it.");
    vec![t]
}

/// E2 — Theorem 3: Blum k-UF trees bound every operation by
/// O(lg n / lg lg n), so Algorithm CC runs in O(n·lg n/lg lg n).
pub fn e2(scale: Scale) -> Vec<Table> {
    let mut micro = Table::new(
        "E2a (Blum single-operation worst case)",
        &["n", "k", "worst find", "worst union", "k+log_k(n) bound"],
    );
    for &n in scale.sides() {
        let n_elems = n * n / 2; // a column UF has `rows` elements; stress more
        let k = BlumUf::default_k(n_elems);
        let mut uf = BlumUf::with_elements(n_elems);
        let (mut worst_find, mut worst_union) = (0u64, 0u64);
        let mut stride = 1usize;
        while stride < n_elems {
            let mut base = 0;
            while base + stride < n_elems {
                let c0 = uf.cost();
                let ra = uf.find(base);
                let c1 = uf.cost();
                worst_find = worst_find.max(c1 - c0);
                let rb = uf.find(base + stride);
                let c2 = uf.cost();
                worst_find = worst_find.max(c2 - c1);
                uf.union_roots(ra, rb);
                worst_union = worst_union.max(uf.cost() - c2);
                base += 2 * stride;
            }
            stride *= 2;
        }
        let bound = k as f64 + lg(n_elems as f64) / lg(k as f64);
        micro.push_row(vec![
            n_elems.to_string(),
            k.to_string(),
            worst_find.to_string(),
            worst_union.to_string(),
            f2(bound),
        ]);
    }
    micro.note("Claim [3]: every union/find costs O(lg n / lg lg n) = O(k + log_k n). Worst observed ops must track the bound column.");

    let mut macro_t = Table::new(
        "E2b (Theorem 3): Algorithm CC with Blum union-find",
        &[
            "workload",
            "n",
            "total steps",
            "steps/n",
            "steps/(n·lg n/lg lg n)",
        ],
    );
    for name in ["tournament", "random50", "comb"] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let run = cc(&img, UfKind::Blum);
            let steps = run.metrics.total_steps as f64;
            macro_t.push_row(vec![
                name.into(),
                n.to_string(),
                run.metrics.total_steps.to_string(),
                f2(steps / n as f64),
                f3(steps / theorem3_shape(n as f64)),
            ]);
        }
    }
    macro_t.note(
        "Claim (Theorem 3): O(n·lg n/lg lg n) worst case. The last column must not grow with n.",
    );
    vec![micro, macro_t]
}

/// E3 — §3: with Tarjan's structure the worst case is O(n lg n), but most
/// images run near O(n).
pub fn e3(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E3 (Tarjan union-find): near-linear typical, O(n lg n) worst case",
        &["workload", "n", "total steps", "steps/n", "steps/(n lg n)"],
    );
    for name in [
        "random05",
        "random25",
        "random50",
        "random90",
        "blobs",
        "maze",
        "tournament",
    ] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let run = cc(&img, UfKind::Tarjan);
            let steps = run.metrics.total_steps as f64;
            t.push_row(vec![
                name.into(),
                n.to_string(),
                run.metrics.total_steps.to_string(),
                f2(steps / n as f64),
                f3(steps / (n as f64 * lg(n as f64))),
            ]);
        }
    }
    t.note("Claim (§3): steps/n stays near-flat on typical images; no workload exceeds a constant in steps/(n lg n).");
    vec![t]
}

/// E4 — Figure 3 difficulty: the naive top-to-bottom label passer is
/// quadratic-or-worse on the adversarial families; Algorithm CC is not.
pub fn e4(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E4 (Fig. 3): naive label passing vs Algorithm CC",
        &[
            "workload",
            "n",
            "naive rounds",
            "naive steps",
            "CC steps",
            "naive/CC",
        ],
    );
    for name in ["comb", "fig3a", "serpentine", "spiral", "random50"] {
        for &n in scale.small_sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let (nl, nr) = naive_slap_labels(&img);
            let run = cc(&img, UfKind::Tarjan);
            assert_eq!(nl, run.labels);
            t.push_row(vec![
                name.into(),
                n.to_string(),
                nr.rounds.to_string(),
                nr.steps.to_string(),
                run.metrics.total_steps.to_string(),
                f2(nr.steps as f64 / run.metrics.total_steps as f64),
            ]);
        }
    }
    t.note("Claim (Fig. 3b): comb/serpentine patterns 'cause excessive delay for a naive approach'. The naive/CC ratio must grow with n on them and stay modest on random images.");
    vec![t]
}

/// E5 — Introduction: previous SLAP algorithms require Θ(n lg n) \[2, 12\].
pub fn e5(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E5 (prior SLAP state of the art): divide & conquer vs Algorithm CC",
        &[
            "workload",
            "n",
            "D&C steps",
            "D&C/(n lg n)",
            "CC steps",
            "D&C/CC",
        ],
    );
    for name in ["empty", "random50", "comb", "blobs"] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let (dl, dr) = divide_conquer_labels(&img);
            let run = cc(&img, UfKind::Tarjan);
            assert_eq!(dl, run.labels);
            t.push_row(vec![
                name.into(),
                n.to_string(),
                dr.steps.to_string(),
                f3(dr.steps as f64 / (n as f64 * lg(n as f64))),
                run.metrics.total_steps.to_string(),
                f2(dr.steps as f64 / run.metrics.total_steps as f64),
            ]);
        }
    }
    t.note("Claim: the merge schedule costs Θ(n lg n) on every image (flat D&C/(n lg n)), while Algorithm CC tracks O(n) on typical inputs, so the ratio grows like lg n.");
    vec![t]
}

/// E6 — Introduction: O(n) mesh algorithms need n² processors.
pub fn e6(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E6 (mesh resource comparison): n PEs (SLAP) vs n^2 PEs (mesh)",
        &[
            "workload",
            "n",
            "SLAP steps (n PEs)",
            "SLAP work",
            "mesh-minprop rounds (n^2 PEs)",
            "mesh work",
            "levialdi rounds",
            "mesh/SLAP work",
        ],
    );
    for name in ["random50", "blobs", "comb"] {
        for &n in scale.small_sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let run = cc(&img, UfKind::Tarjan);
            let (ml, mr) = mesh_min_propagation(&img);
            assert_eq!(ml, run.labels);
            let (_, lev) = levialdi_count(&img);
            let slap_work = run.metrics.total_steps * n as u64;
            let mesh_work = mr.work();
            t.push_row(vec![
                name.into(),
                n.to_string(),
                run.metrics.total_steps.to_string(),
                slap_work.to_string(),
                mr.rounds.to_string(),
                mesh_work.to_string(),
                lev.rounds.to_string(),
                f2(mesh_work as f64 / slap_work as f64),
            ]);
        }
    }
    t.note("Claim (intro): meshes reach O(n) time only by spending n^2 processors; with n=128 that 'would greatly exceed the available resources on most existing parallel machines'. Work = time x processors.");
    vec![t]
}

/// E7 — Corollary 4: component-wise folds of initial labels in the same
/// asymptotic time.
pub fn e7(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E7 (Corollary 4): component folds of initial labels",
        &[
            "workload",
            "n",
            "fold",
            "fold steps",
            "CC steps",
            "fold/CC",
            "messages",
        ],
    );
    for name in ["blobs", "random50", "fig3a"] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let run = label_components::<TarjanUf>(&img, &CcOptions::default());
            let rows = img.rows();
            type FoldRunner<'a> = Box<dyn Fn() -> (u64, u64) + 'a>;
            let folds: [(&str, FoldRunner); 3] = [
                (
                    "min",
                    Box::new(|| {
                        let f = component_fold::<MinFold>(&img, &run.labels, &move |r, c| {
                            (c * rows + r) as u64
                        });
                        // the paper's headline: min of positions = the label
                        for &(l, v) in &f.per_component {
                            assert_eq!(v, l as u64);
                        }
                        (
                            f.metrics.total_steps,
                            f.metrics.prefix_pass.messages + f.metrics.suffix_pass.messages,
                        )
                    }),
                ),
                (
                    "max",
                    Box::new(|| {
                        let f = component_fold::<MaxFold>(&img, &run.labels, &move |r, c| {
                            (c * rows + r) as u64
                        });
                        (
                            f.metrics.total_steps,
                            f.metrics.prefix_pass.messages + f.metrics.suffix_pass.messages,
                        )
                    }),
                ),
                (
                    "size",
                    Box::new(|| {
                        let f = component_fold::<SumFold>(&img, &run.labels, &|_, _| 1u64);
                        (
                            f.metrics.total_steps,
                            f.metrics.prefix_pass.messages + f.metrics.suffix_pass.messages,
                        )
                    }),
                ),
            ];
            for (fname, runf) in folds {
                let (steps, msgs) = runf();
                t.push_row(vec![
                    name.into(),
                    n.to_string(),
                    fname.into(),
                    steps.to_string(),
                    run.metrics.total_steps.to_string(),
                    f2(steps as f64 / run.metrics.total_steps as f64),
                    msgs.to_string(),
                ]);
            }
        }
    }
    t.note("Claim (Corollary 4): 'the same asymptotic time as to produce any component labeling' — fold/CC must stay bounded by a constant. min-of-positions folds are verified to equal the labels themselves.");
    vec![t]
}

/// E8 — Theorem 5: the 1-bit-link SLAP needs Ω(n lg n).
pub fn e8(scale: Scale) -> Vec<Table> {
    let mut lower = Table::new(
        "E8a (Theorem 5 counting argument, exhaustive)",
        &[
            "n",
            "instances",
            "distinct right-column labelings",
            "required bits",
            "(n/2)·lg n",
        ],
    );
    let sides: &[usize] = match scale {
        Scale::Quick => &[4, 6],
        Scale::Full => &[4, 6, 8, 10],
    };
    for &n in sides {
        let r = entropy_report(n, 200_000);
        lower.push_row(vec![
            n.to_string(),
            r.instances.to_string(),
            r.distinct_labelings.to_string(),
            f2(r.required_bits),
            f2(n as f64 / 2.0 * lg(n as f64)),
        ]);
    }
    lower.note("Claim: the rightmost PE must learn Ω(n lg n) bits (one start column per even row), so the 1-bit machine needs Ω(n lg n) steps. distinct = n^(n/2) exactly.");

    let mut upper = Table::new(
        "E8b (bit-serial Algorithm CC on the 1-bit machine)",
        &[
            "n",
            "message bits",
            "bit-serial steps",
            "word steps",
            "bit-serial/(n lg n)",
        ],
    );
    for &n in scale.sides() {
        let img = gen::even_rows_random(n, n, 17);
        let word = cc(&img, UfKind::Tarjan);
        let bit = label_components_bitserial(&img, UfKind::Tarjan, &CcOptions::default());
        assert_eq!(bit.labels, word.labels);
        upper.push_row(vec![
            n.to_string(),
            message_bits(n, n).to_string(),
            bit.metrics.total_steps.to_string(),
            word.metrics.total_steps.to_string(),
            f3(bit.metrics.total_steps as f64 / (n as f64 * lg(n as f64))),
        ]);
    }
    upper.note("Serializing each O(lg n)-bit message gives an O(n lg n) upper bound on the restricted machine: the last column must stay bounded, sandwiching the Θ(n lg n) answer with E8a.");
    vec![lower, upper]
}

/// E9 — §3 practical variants: idle-time compression and eager forwarding.
pub fn e9(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E9 (practical variants of §3)",
        &[
            "workload",
            "n",
            "variant",
            "total steps",
            "vs baseline",
            "idle filled",
        ],
    );
    let variants: [(&str, CcOptions); 4] = [
        ("baseline", CcOptions::default()),
        (
            "eager",
            CcOptions {
                eager_forward: true,
                ..CcOptions::default()
            },
        ),
        (
            "idle-compress",
            CcOptions {
                idle_compression: true,
                ..CcOptions::default()
            },
        ),
        (
            "eager+idle",
            CcOptions {
                eager_forward: true,
                idle_compression: true,
                ..CcOptions::default()
            },
        ),
    ];
    for name in ["comb", "fig3a", "tournament", "random50"] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let base = label_components::<TarjanUf>(&img, &variants[0].1);
            for (vname, opts) in &variants {
                let run = label_components::<TarjanUf>(&img, opts);
                assert_eq!(run.labels, base.labels);
                let idle_used: u64 = run
                    .metrics
                    .left
                    .uf_pass
                    .per_pe
                    .iter()
                    .chain(run.metrics.right.uf_pass.per_pe.iter())
                    .map(|p| p.idle_used)
                    .sum();
                t.push_row(vec![
                    name.into(),
                    n.to_string(),
                    (*vname).into(),
                    run.metrics.total_steps.to_string(),
                    f3(run.metrics.total_steps as f64 / base.metrics.total_steps as f64),
                    idle_used.to_string(),
                ]);
            }
        }
    }
    t.note("Claim (§3): compressing during idle time and forwarding speculatively 'may improve performance'. Labels are asserted identical across variants.");
    vec![t]
}

/// E10 — §3 / \[21\]: the union-find family compared under identical passes.
pub fn e10(scale: Scale) -> Vec<Table> {
    let mut micro = Table::new(
        "E10a (single-operation worst case per union-find implementation)",
        &["impl", "n", "worst op", "total units", "units/op"],
    );
    let n = match scale {
        Scale::Quick => 1 << 12,
        Scale::Full => 1 << 16,
    };
    for &kind in UfKind::ALL {
        let mut uf = kind.build(n);
        let mut worst = 0u64;
        let mut ops = 0u64;
        let mut stride = 1usize;
        while stride < n {
            let mut base = 0;
            while base + stride < n {
                let c0 = uf.cost();
                uf.union(base, base + stride);
                worst = worst.max(uf.cost() - c0);
                ops += 3;
                base += 2 * stride;
            }
            stride *= 2;
        }
        for x in (0..n).step_by(61) {
            let c0 = uf.cost();
            uf.find(x);
            worst = worst.max(uf.cost() - c0);
            ops += 1;
        }
        micro.push_row(vec![
            kind.name().into(),
            n.to_string(),
            worst.to_string(),
            uf.cost().to_string(),
            f2(uf.cost() as f64 / ops as f64),
        ]);
    }
    micro.note("Tournament merge order (the weighted-union depth worst case). 'ideal' meters 1 unit/op by definition; quickfind's worst op is Θ(n); blum bounds the worst op at O(lg n/lg lg n).");

    let mut header: Vec<&str> = vec!["workload", "n"];
    header.extend(UfKind::ALL.iter().map(|k| k.name()));
    let mut macro_t = Table::new(
        "E10b (Algorithm CC total steps per union-find implementation)",
        &header,
    );
    let side = *scale.sides().last().unwrap();
    for name in ["tournament", "random50", "comb"] {
        let img = gen::by_name(name, side, 11).unwrap();
        let mut row = vec![name.to_string(), side.to_string()];
        for &kind in UfKind::ALL {
            let run = cc(&img, kind);
            row.push(run.metrics.total_steps.to_string());
        }
        macro_t.push_row(row);
    }
    macro_t.note("Same pass, same images; only the union-find meter changes. Paper §3: rank+halving is expected comparable to size+compression [21].");
    vec![micro, macro_t]
}

/// E11 — simulator scalability: the threaded lock-step executor.
pub fn e11(scale: Scale) -> Vec<Table> {
    use slap_baselines::naive_slap::naive_slap_lockstep;
    let mut t = Table::new(
        "E11 (threaded lock-step executor wall clock)",
        &["n", "relax rounds", "threads", "wall ms", "speedup"],
    );
    let (n, rounds) = match scale {
        Scale::Quick => (96usize, 24u32),
        Scale::Full => (256, 64),
    };
    let img = gen::double_comb(n, n, 2);
    let reference = naive_slap_lockstep(&img, rounds, 1);
    let mut base_ms = 0.0f64;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= 2 * cores)
        .collect();
    for threads in thread_counts {
        let start = std::time::Instant::now();
        let labels = naive_slap_lockstep(&img, rounds, threads);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(labels, reference, "threads={threads} diverged");
        if threads == 1 {
            base_ms = ms;
        }
        t.push_row(vec![
            n.to_string(),
            rounds.to_string(),
            threads.to_string(),
            f2(ms),
            f2(base_ms / ms),
        ]);
    }
    t.note(format!(
        "Ours (not a paper claim): the cycle-level executor parallelizes across PE blocks \
         with identical (deterministic) results; wall clock is the only thing that changes. \
         This host exposes {cores} core(s); thread counts beyond 2x that are skipped."
    ));
    vec![t]
}

/// E12 — §3 structural claim: the phase-2 row-pair sequence of each PE,
/// viewed as intervals, never interleaves (consecutive pairs are disjoint up
/// to an endpoint, or the new pair contains the previous one).
pub fn e12(scale: Scale) -> Vec<Table> {
    use slap_cc::passes::{interval_property_violations, unionfind_pass_traced};
    use slap_machine::run_pipeline;
    use slap_unionfind::RankHalvingUf;
    let mut t = Table::new(
        "E12 (S3 structure): phase-2 interval property of Union-Find-Pass",
        &[
            "workload",
            "n",
            "pairs dequeued",
            "adjacent violations",
            "violation rate",
        ],
    );
    let opts = CcOptions::default();
    for name in [
        "random25",
        "random50",
        "fig3a",
        "comb",
        "tournament",
        "maze",
        "staircase",
    ] {
        for &n in scale.small_sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let cols = img.columns();
            let mut traces: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cols.cols()];
            let (_states, _) = run_pipeline(cols.cols(), |pe, ctx| {
                unionfind_pass_traced::<RankHalvingUf>(&cols, &opts, pe, &mut traces[pe], ctx)
            });
            let pairs: usize = traces.iter().map(Vec::len).sum();
            let violations: usize = traces
                .iter()
                .map(|tr| interval_property_violations(tr))
                .sum();
            let adjacent: usize = traces.iter().map(|tr| tr.len().saturating_sub(1)).sum();
            t.push_row(vec![
                name.into(),
                n.to_string(),
                pairs.to_string(),
                violations.to_string(),
                if adjacent == 0 {
                    "-".into()
                } else {
                    f3(violations as f64 / adjacent as f64)
                },
            ]);
        }
    }
    t.note("Claim (S3): 'we never have t_k or b_k strictly between t_{k-1} and b_{k-1}'. Zero violations reproduces the claim; any non-zero rate would document a deviation (e.g. from witness selection).");
    vec![t]
}

/// E13 — (ours) run-length ablation: Algorithm CC over the run universe vs
/// the paper's per-pixel universe, identical labels asserted.
pub fn e13(scale: Scale) -> Vec<Table> {
    use slap_cc::label_components_runs;
    let mut t = Table::new(
        "E13 (ablation): run-length vs per-pixel pass representation",
        &[
            "workload",
            "n",
            "pixel steps",
            "run steps",
            "run/pixel",
            "uf-pass msgs (pixel)",
            "uf-pass msgs (run)",
        ],
    );
    for name in [
        "vstripes", "blobs", "random25", "random50", "random90", "comb", "maze",
    ] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let opts = CcOptions::default();
            let pixel = label_components::<TarjanUf>(&img, &opts);
            let runs = label_components_runs::<TarjanUf>(&img, &opts);
            assert_eq!(runs.labels, pixel.labels, "{name} n={n}");
            t.push_row(vec![
                name.into(),
                n.to_string(),
                pixel.metrics.total_steps.to_string(),
                runs.metrics.total_steps.to_string(),
                f3(runs.metrics.total_steps as f64 / pixel.metrics.total_steps as f64),
                (pixel.metrics.left.uf_pass.messages + pixel.metrics.right.uf_pass.messages)
                    .to_string(),
                (runs.metrics.left.uf_pass.messages + runs.metrics.right.uf_pass.messages)
                    .to_string(),
            ]);
        }
    }
    t.note(
        "Ours (engineering ablation, in the spirit of the run-oriented processing in [2]): \
            the run universe shrinks union-find from n elements to #runs per column. run/pixel \
            < 1 everywhere; the gain is largest on solid workloads (vstripes: one run per \
            column) and smallest on sparse noise (random25: most runs are single pixels, so \
            the run table saves little). Wire format and labels unchanged.",
    );
    vec![t]
}

/// E14 — (ours) 8-connectivity extension: same pipeline, diagonal-bridge
/// phase-1 rule and widened witnesses; cost parity with 4-connectivity.
pub fn e14(scale: Scale) -> Vec<Table> {
    use slap_image::{bfs_labels_conn, Connectivity};
    let mut t = Table::new(
        "E14 (extension): 8-connectivity vs 4-connectivity",
        &[
            "workload",
            "n",
            "4-conn steps",
            "8-conn steps",
            "8/4",
            "components 4",
            "components 8",
        ],
    );
    for name in [
        "antidiag",
        "staircase",
        "checker",
        "random50",
        "maze",
        "blobs",
    ] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let four = label_components::<TarjanUf>(&img, &CcOptions::default());
            let opts8 = CcOptions {
                connectivity: Connectivity::Eight,
                ..CcOptions::default()
            };
            let eight = label_components::<TarjanUf>(&img, &opts8);
            assert_eq!(eight.labels, bfs_labels_conn(&img, Connectivity::Eight));
            t.push_row(vec![
                name.into(),
                n.to_string(),
                four.metrics.total_steps.to_string(),
                eight.metrics.total_steps.to_string(),
                f3(eight.metrics.total_steps as f64 / four.metrics.total_steps as f64),
                four.labels.component_count().to_string(),
                eight.labels.component_count().to_string(),
            ]);
        }
    }
    t.note(
        "Ours (extension): the paper's framework carries over to 8-connectivity with a \
            local diagonal-bridge rule and witnesses that point into the neighbor column. \
            The 8/4 step ratio stays near 1 (constant-factor overhead); component counts \
            collapse on diagonal-rich workloads (antidiag 87381 -> 341 at n=512; random50 \
            19x fewer) and are untouched where no diagonals exist (checker's isolated \
            pixels sit 2 apart; staircase steps are already 4-connected).",
    );
    vec![t]
}

/// E15 — Introduction: hypercube/shuffle-exchange networks beat O(n) time,
/// at the cost of n² PEs and Θ(n² lg n) links \[5\].
pub fn e15(scale: Scale) -> Vec<Table> {
    use hypercube_machine::sv_labels;
    let mut t = Table::new(
        "E15 (hypercube resource comparison): polylog time vs SLAP's O(n)",
        &[
            "workload",
            "n",
            "SLAP steps",
            "SLAP links",
            "cube rounds",
            "cube iters",
            "cube PEs",
            "cube links",
            "SLAP/cube time",
            "cube/SLAP work",
        ],
    );
    for name in ["serpentine", "random50", "blobs"] {
        for &n in scale.sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let run = cc(&img, UfKind::Tarjan);
            let (labels, rep) = sv_labels(&img);
            assert_eq!(labels, run.labels);
            let slap_work = run.metrics.total_steps * n as u64;
            t.push_row(vec![
                name.into(),
                n.to_string(),
                run.metrics.total_steps.to_string(),
                (n - 1).to_string(),
                rep.rounds.to_string(),
                rep.iterations.to_string(),
                rep.pes.to_string(),
                rep.links.to_string(),
                f2(run.metrics.total_steps as f64 / rep.rounds as f64),
                f2(rep.work() as f64 / slap_work as f64),
            ]);
        }
    }
    t.note(
        "Claim (intro, [5]): richer networks beat O(n) time 'but only with interconnection \
            networks that are more complicated and, therefore, more costly'. Cube rounds grow \
            polylogarithmically (SLAP/cube time rises with n) while the cube spends n²/n times \
            the processors and ~n·lg(n²)/2 times the links; cube/SLAP work quantifies the price.",
    );
    vec![t]
}

/// E16 — §3 speculative forwarding with quashing, on the lock-step machine:
/// "enqueue a pair of finds for the next processor as soon as two pixels are
/// found that are adjacent to 1-pixels in the next column … it could then
/// quash the pair of finds it had previously passed to the next processor."
pub fn e16(scale: Scale) -> Vec<Table> {
    use slap_cc::lockstep_cc::{label_components_lockstep, label_components_lockstep_quash};
    let mut t = Table::new(
        "E16 (S3 speculation + quashing, lock-step machine)",
        &[
            "workload",
            "n",
            "plain cycles",
            "eager cycles",
            "quash cycles",
            "quash/plain",
            "spec sent",
            "quashes",
            "dropped",
            "aborted",
        ],
    );
    for name in [
        "hstripes",
        "random65",
        "full",
        "tournament",
        "fig3a",
        "maze",
    ] {
        for &n in scale.small_sides() {
            let img = gen::by_name(name, n, 11).unwrap();
            let plain_opts = CcOptions::default();
            let eager_opts = CcOptions {
                eager_forward: true,
                ..CcOptions::default()
            };
            let (plain_run, plain) = label_components_lockstep::<TarjanUf>(&img, &plain_opts, 1);
            let (eager_run, eager) = label_components_lockstep::<TarjanUf>(&img, &eager_opts, 1);
            let (quash_run, quash) =
                label_components_lockstep_quash::<TarjanUf>(&img, &plain_opts, 1, true);
            assert_eq!(plain_run.labels, quash_run.labels);
            assert_eq!(plain_run.labels, eager_run.labels);
            t.push_row(vec![
                name.into(),
                n.to_string(),
                plain.total_rounds.to_string(),
                eager.total_rounds.to_string(),
                quash.total_rounds.to_string(),
                f3(quash.total_rounds as f64 / plain.total_rounds as f64),
                quash.spec.spec_sent.to_string(),
                quash.spec.quash_sent.to_string(),
                quash.spec.pairs_dropped.to_string(),
                quash.spec.stalls_aborted.to_string(),
            ]);
        }
    }
    t.note(
        "Claim (§3): speculative pair forwarding with quashing may improve performance. \
            Quashes fire exactly on redundant connectivity (cycles: hstripes/full/random65/ \
            tournament; zero on the acyclic fig3a/maze), most overtake their pair in the \
            receiver's queue (dropped), and quashing contains the full-array cascades that \
            bare eager forwarding triggers on solid bands. Labels identical in all variants.",
    );
    vec![t]
}

/// All experiments in order.
pub fn all(scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    for f in [
        e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14, e15, e16,
    ] {
        out.extend(f(scale));
    }
    out
}

/// Runs one experiment by id ("e1".."e14" or "all").
pub fn by_name(name: &str, scale: Scale) -> Option<Vec<Table>> {
    Some(match name {
        "e1" => e1(scale),
        "e2" => e2(scale),
        "e3" => e3(scale),
        "e4" => e4(scale),
        "e5" => e5(scale),
        "e6" => e6(scale),
        "e7" => e7(scale),
        "e8" => e8(scale),
        "e9" => e9(scale),
        "e10" => e10(scale),
        "e11" => e11(scale),
        "e12" => e12(scale),
        "e13" => e13(scale),
        "e14" => e14(scale),
        "e15" => e15(scale),
        "e16" => e16(scale),
        "all" => all(scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs_at_quick_scale() {
        for name in ["e1", "e4", "e7", "e9"] {
            let tables = by_name(name, Scale::Quick).unwrap();
            assert!(!tables.is_empty());
            for t in &tables {
                assert!(!t.rows.is_empty(), "{name} produced an empty table");
            }
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(by_name("e99", Scale::Quick).is_none());
    }
}
