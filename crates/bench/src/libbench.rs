//! Experiment harness reproducing every quantitative claim of the paper.
//!
//! The paper (a preliminary version) contains no measured tables or figures —
//! "the final version of this paper will report on experimental results" —
//! so the reproduction targets are its *claims*: Lemma 1/2, Theorem 3, the
//! §3 worst-case and practical-variant discussion, Corollary 4, Theorem 5,
//! the Figure 3 difficulty arguments, and the introduction's comparisons
//! against prior SLAP and mesh algorithms. DESIGN.md maps each claim to an
//! experiment id (E1–E16); EXPERIMENTS.md records claim vs. measurement.
//!
//! Each `eN` function returns one or more markdown [`Table`]s; the
//! `experiments` binary prints them (`experiments all`, `experiments e3`,
//! `--quick` for smaller sweeps).

#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod json;
pub mod parallel;
pub mod propagate;
pub mod reuse;
pub mod serve;
pub mod stream;
pub mod sweep;
pub mod table;
pub mod tiled;

pub use table::Table;

/// Sweep sizes: `quick` keeps every experiment under a few seconds for CI;
/// `full` is what EXPERIMENTS.md records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps for smoke testing.
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Image sides used for the main sweeps.
    pub fn sides(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[32, 64],
            Scale::Full => &[64, 128, 256, 512],
        }
    }

    /// Image sides for the more expensive baselines (naive / mesh).
    pub fn small_sides(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[24, 48],
            Scale::Full => &[32, 64, 128, 256],
        }
    }
}
