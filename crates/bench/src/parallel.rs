//! The `slap-bench parallel` sweep: strip-parallel engine scaling vs. the
//! sequential fast engine, serialized to `BENCH_parallel.json`.
//!
//! For each (family, size, connectivity) point the sweep times the
//! sequential fast engine once and the strip-parallel engine at every
//! thread count in [`THREAD_COUNTS`] — both as warm registry sessions
//! ([`EngineKind::session`]) — asserting bit-identical labels while timing.
//! The recorded `host_threads` (the
//! machine's available parallelism) travels with the file: wall-clock
//! speedup is a property of the recording host, and the [`validate`]
//! headline criterion — parallel@4 ≥ 1.8× the sequential engine on
//! `random50` @ 2048² under 4-connectivity — is only enforceable when the
//! host actually has ≥ 4 hardware threads.

use crate::json;
use crate::sweep::{self, conn_id, CONNS, SEED};
use slap_cc::engine::EngineKind;
use slap_image::LabelGrid;
use std::fmt::Write as _;

/// Schema identifier stamped into (and required from) every parallel file.
pub const SCHEMA: &str = "slap-bench-parallel/v1";

/// Thread counts swept by the `parallel` engine entries.
pub const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// The headline speedup `validate` demands from parallel@4 over the
/// sequential engine on `random50` @ 2048² (4-connectivity), on hosts with
/// at least [`MIN_HOST_THREADS`] hardware threads.
pub const REQUIRED_SPEEDUP: f64 = 1.8;

/// Minimum recorded host parallelism for the speedup criterion to apply.
pub const MIN_HOST_THREADS: u64 = 4;

/// One timed (family, size, connectivity, engine, threads) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// `"fast"` (sequential reference) or `"parallel"`.
    pub engine: String,
    /// Worker threads (always `1` for the `"fast"` engine).
    pub threads: usize,
    /// Best wall-clock nanoseconds over the repetitions.
    pub best_ns: u64,
    /// Mean wall-clock nanoseconds over the repetitions.
    pub mean_ns: u64,
    /// Number of timed repetitions.
    pub reps: usize,
    /// For `"parallel"` entries: labels were bit-identical to the
    /// sequential engine's.
    pub bit_identical: Option<bool>,
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// `std::thread::available_parallelism()` on the recording host.
    pub host_threads: usize,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All timed points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale.
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "checker"];
    if quick {
        (FAMILIES, &[64, 128, 256])
    } else {
        (FAMILIES, &[512, 1024, 2048])
    }
}

/// Runs the sweep. `progress` receives one line per timed point. Engines
/// are warm registry sessions: one [`EngineKind::Fast`] session as the
/// sequential reference, one [`EngineKind::Parallel`] session per thread
/// count.
pub fn run_parallel(quick: bool, mut progress: impl FnMut(&str)) -> ParallelReport {
    let (families, sides) = sweep_params(quick);
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut entries = Vec::new();
    let mut fast = EngineKind::Fast.session(1);
    let mut fast_grid = LabelGrid::new_background(1, 1);
    let mut par_grid = LabelGrid::new_background(1, 1);
    sweep::drive(families, sides, quick, |p| {
        let (family, n, cid, reps) = (p.family, p.n, p.cid, p.reps);
        // Sequential reference: timed, and the identity baseline.
        let (best, mean) = sweep::time_reps(reps, || {
            fast.label_into(std::hint::black_box(p.img), p.conn, &mut fast_grid);
        });
        progress(&format!(
            "{family}/{n}/{cid}-conn fast: {:.3} ms",
            best as f64 / 1e6
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            engine: "fast".to_string(),
            threads: 1,
            best_ns: best,
            mean_ns: mean,
            reps,
            bit_identical: None,
        });
        for &t in THREAD_COUNTS {
            let mut labeler = EngineKind::Parallel.session(t);
            let (best, mean) = sweep::time_reps(reps, || {
                labeler.label_into(std::hint::black_box(p.img), p.conn, &mut par_grid);
            });
            let ok = par_grid == fast_grid;
            progress(&format!(
                "{family}/{n}/{cid}-conn parallel@{t}: {:.3} ms",
                best as f64 / 1e6
            ));
            entries.push(Entry {
                family: family.to_string(),
                n,
                conn: cid,
                engine: "parallel".to_string(),
                threads: t,
                best_ns: best,
                mean_ns: mean,
                reps,
                bit_identical: Some(ok),
            });
        }
    });
    ParallelReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        host_threads,
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl ParallelReport {
    /// Best time of one recorded point.
    fn best_of(
        &self,
        family: &str,
        n: usize,
        conn: u32,
        engine: &str,
        threads: usize,
    ) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| {
                e.family == family
                    && e.n == n
                    && e.conn == conn
                    && e.engine == engine
                    && e.threads == threads
            })
            .map(|e| e.best_ns)
    }

    /// Serializes the report. Hand-rolled (the workspace `serde` is a
    /// no-op stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let _ = writeln!(s, "  \"host_threads\": {},", self.host_threads);
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        let threads: Vec<String> = THREAD_COUNTS.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(s, "  \"thread_counts\": [{}],", threads.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"engine\": {}, \"threads\": {}, \
                 \"best_ns\": {}, \"mean_ns\": {}, \"reps\": {}",
                json::quote(&e.family),
                e.n,
                e.conn,
                json::quote(&e.engine),
                e.threads,
                e.best_ns,
                e.mean_ns,
                e.reps
            );
            if let Some(ok) = e.bit_identical {
                let _ = write!(s, ", \"bit_identical\": {ok}");
            }
            s.push('}');
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        // Derived scaling ratios: parallel@T vs the sequential engine.
        s.push_str("  \"speedups\": [\n");
        let mut lines = Vec::new();
        for family in &self.families {
            for &n in &self.sides {
                for &conn in CONNS {
                    let cid = conn_id(conn);
                    let Some(fast) = self.best_of(family, n, cid, "fast", 1) else {
                        continue;
                    };
                    let ratios: Vec<String> = THREAD_COUNTS
                        .iter()
                        .filter_map(|&t| {
                            let par = self.best_of(family, n, cid, "parallel", t)?;
                            Some(format!(
                                "\"x{}\": {:.3}",
                                t,
                                fast as f64 / par.max(1) as f64
                            ))
                        })
                        .collect();
                    lines.push(format!(
                        "    {{\"family\": {}, \"n\": {}, \"conn\": {}, {}}}",
                        json::quote(family),
                        n,
                        cid,
                        ratios.join(", ")
                    ));
                }
            }
        }
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Validates a parallel-sweep JSON document against the schema. With
/// `require_full` the file must also be a full-scale sweep, and — when the
/// recording host had at least [`MIN_HOST_THREADS`] hardware threads — must
/// meet the headline criterion: parallel@4 at least [`REQUIRED_SPEEDUP`]×
/// the sequential fast engine on `random50` @ 2048² under 4-connectivity.
/// On narrower hosts (a 1-core CI container cannot exhibit wall-clock
/// speedup) the shape and bit-identity checks still apply in full.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale parallel sweep is required".to_string());
    }
    let host_threads = get("host_threads")?
        .as_u64()
        .filter(|&v| v > 0)
        .ok_or("host_threads is not a positive integer")?;
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // Per-entry shape, plus (family, n, conn) → {fast seen, parallel thread
    // counts seen}.
    let mut coverage: Vec<(String, u64, u64, bool, Vec<u64>)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let engine = field("engine")?
            .as_str()
            .ok_or_else(|| ctx("engine is not a string"))?
            .to_string();
        let threads = field("threads")?
            .as_u64()
            .filter(|&t| t > 0)
            .ok_or_else(|| ctx("threads is not a positive integer"))?;
        let best = field("best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("best_ns is not a positive integer"))?;
        let mean = field("mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("mean_ns is not an integer"))?;
        if mean < best {
            return Err(ctx("mean_ns is below best_ns"));
        }
        field("reps")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("reps is not a positive integer"))?;
        match engine.as_str() {
            "fast" => {
                if threads != 1 {
                    return Err(ctx("fast entries must record threads = 1"));
                }
            }
            "parallel" => {
                let ok = eo
                    .iter()
                    .find(|(k, _)| k == "bit_identical")
                    .and_then(|(_, v)| v.as_bool())
                    .ok_or_else(|| ctx("parallel entry lacks bit_identical"))?;
                if !ok {
                    return Err(ctx("labels were not bit-identical to the fast engine"));
                }
            }
            other => return Err(ctx(&format!("unknown engine {other:?}"))),
        }
        match coverage
            .iter_mut()
            .find(|(f, m, c, _, _)| *f == family && *m == n && *c == conn)
        {
            Some((_, _, _, fast_seen, par_threads)) => {
                if engine == "fast" {
                    *fast_seen = true;
                } else {
                    par_threads.push(threads);
                }
            }
            None => coverage.push((
                family,
                n,
                conn,
                engine == "fast",
                if engine == "parallel" {
                    vec![threads]
                } else {
                    Vec::new()
                },
            )),
        }
    }
    // Coverage: every point needs the sequential reference plus ≥ 3 thread
    // counts, and each connectivity needs ≥ 2 families × ≥ 3 sizes.
    for want in [4u64, 8] {
        let full_points: Vec<_> = coverage
            .iter()
            .filter(|(_, _, c, fast_seen, par)| {
                *c == want && *fast_seen && {
                    let mut t = par.clone();
                    t.sort_unstable();
                    t.dedup();
                    t.len() >= 3
                }
            })
            .collect();
        let mut fams: Vec<&str> = full_points.iter().map(|(f, ..)| f.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        let mut ns: Vec<u64> = full_points.iter().map(|(_, n, ..)| *n).collect();
        ns.sort_unstable();
        ns.dedup();
        if fams.len() < 2 || ns.len() < 3 {
            return Err(format!(
                "coverage too thin at {want}-connectivity: {} families × {} sizes \
                 with fast + ≥3 thread counts (need ≥ 2 × ≥ 3)",
                fams.len(),
                ns.len()
            ));
        }
    }
    if require_full && host_threads >= MIN_HOST_THREADS {
        let best_of = |engine: &str, threads: u64| {
            entries.iter().find_map(|e| {
                let eo = e.as_object()?;
                let s = |k: &str| eo.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                (s("family")?.as_str()? == "random50"
                    && s("n")?.as_u64()? == 2048
                    && s("conn")?.as_u64()? == 4
                    && s("engine")?.as_str()? == engine
                    && s("threads")?.as_u64()? == threads)
                    .then(|| s("best_ns")?.as_u64())
                    .flatten()
            })
        };
        let fast = best_of("fast", 1).ok_or("no fast entry for random50 @ 2048 (4-conn)")?;
        let par =
            best_of("parallel", 4).ok_or("no parallel@4 entry for random50 @ 2048 (4-conn)")?;
        let ratio = fast as f64 / par.max(1) as f64;
        if ratio < REQUIRED_SPEEDUP {
            return Err(format!(
                "parallel@4 is only {ratio:.2}× the fast engine on random50 @ 2048 \
                 (need ≥ {REQUIRED_SPEEDUP}× on a host with ≥ {MIN_HOST_THREADS} threads)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(host_threads: usize) -> ParallelReport {
        let mut entries = Vec::new();
        for family in ["random50", "blobs"] {
            for n in [512usize, 1024, 2048] {
                for conn in [4u32, 8] {
                    entries.push(Entry {
                        family: family.to_string(),
                        n,
                        conn,
                        engine: "fast".to_string(),
                        threads: 1,
                        best_ns: 4000,
                        mean_ns: 4500,
                        reps: 3,
                        bit_identical: None,
                    });
                    for t in [1usize, 2, 4, 8] {
                        entries.push(Entry {
                            family: family.to_string(),
                            n,
                            conn,
                            engine: "parallel".to_string(),
                            threads: t,
                            best_ns: 4000 / (t as u64).min(4), // 4× at 4 threads
                            mean_ns: 4500,
                            reps: 3,
                            bit_identical: Some(true),
                        });
                    }
                }
            }
        }
        ParallelReport {
            scale: "full".to_string(),
            host_threads,
            families: vec!["random50".to_string(), "blobs".to_string()],
            sides: vec![512, 1024, 2048],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report(8).to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report(8).to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_rejects_non_identical_labels() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "parallel" {
                e.bit_identical = Some(false);
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn full_validation_enforces_the_speedup_on_wide_hosts() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "parallel" {
                e.best_ns = 4000; // no speedup at any thread count
            }
        }
        let text = report.to_json();
        validate(&text, false).expect("quick validation ignores the ratio");
        let err = validate(&text, true).unwrap_err();
        assert!(err.contains("1.8"), "{err}");
    }

    #[test]
    fn full_validation_waives_the_speedup_on_narrow_hosts() {
        // Same no-speedup numbers, but recorded on a 1-thread host: the
        // ratio criterion cannot apply there.
        let mut report = tiny_report(1);
        for e in &mut report.entries {
            if e.engine == "parallel" {
                e.best_ns = 4000;
            }
        }
        validate(&report.to_json(), true).expect("narrow-host full validation");
    }

    #[test]
    fn validation_rejects_thin_coverage() {
        let mut report = tiny_report(8);
        report.entries.retain(|e| e.family == "random50");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        let report = run_parallel(true, |_| {});
        validate(&report.to_json(), false).expect("fresh quick sweep validates");
    }
}
