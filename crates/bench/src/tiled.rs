//! The `slap-bench tiled` sweep: 2-D tiled engine across tile shapes plus
//! the out-of-core band scheduler, serialized to `BENCH_tiled.json`.
//!
//! For each (family, size, connectivity) point the sweep times the
//! sequential fast engine once (the identity baseline), the tiled engine at
//! every shape in [`TILE_SHAPES`] — asserting bit-identical labels while
//! timing — and the out-of-core scheduler at a band budget of a quarter
//! frame, recording its carried-state peak and checking its retired labels
//! against the whole-frame engine. As with the parallel sweep, the recorded
//! `host_threads` travels with the file: the [`validate`] headline speedup
//! (tiled 2×2 @ 4 threads ≥ [`REQUIRED_SPEEDUP`]× the fast engine on
//! `random50` @ 2048² under 4-connectivity) is only enforceable when the
//! recording host actually has ≥ [`MIN_HOST_THREADS`] hardware threads; the
//! bit-identity, carried-state, and coverage checks apply everywhere.

use crate::json;
use crate::sweep::{self, conn_id, CONNS, SEED};
use slap_cc::engine::EngineKind;
use slap_image::{label_out_of_core, BitmapRows, LabelGrid};
use std::fmt::Write as _;

/// Schema identifier stamped into (and required from) every tiled file.
pub const SCHEMA: &str = "slap-bench-tiled/v1";

/// Tile grids swept, as `(tiles_y, tiles_x)`: the two degenerate
/// single-axis cuts, the canonical quad, and a deeper hierarchy.
pub const TILE_SHAPES: &[(usize, usize)] = &[(1, 2), (2, 1), (2, 2), (4, 4)];

/// Worker threads given to every tiled entry.
pub const TILE_THREADS: usize = 4;

/// The headline speedup `validate` demands from tiled 2×2 @ 4 threads over
/// the sequential engine on `random50` @ 2048² (4-connectivity), on hosts
/// with at least [`MIN_HOST_THREADS`] hardware threads.
pub const REQUIRED_SPEEDUP: f64 = 1.5;

/// Minimum recorded host parallelism for the speedup criterion to apply.
pub const MIN_HOST_THREADS: u64 = 4;

/// One timed (family, size, connectivity, engine) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// `"fast"` (sequential reference), `"tiled"`, or `"ooc"`.
    pub engine: String,
    /// Tile grid, `(tiles_y, tiles_x)`; `(1, 1)` for the fast reference and
    /// `(1, tiles_x)` for out-of-core bands.
    pub tiles: (usize, usize),
    /// Worker threads.
    pub threads: usize,
    /// Best wall-clock nanoseconds over the repetitions.
    pub best_ns: u64,
    /// Mean wall-clock nanoseconds over the repetitions.
    pub mean_ns: u64,
    /// Number of timed repetitions.
    pub reps: usize,
    /// For `"tiled"` entries: labels were bit-identical to the sequential
    /// engine's.
    pub bit_identical: Option<bool>,
    /// For `"ooc"` entries: rows resident per band (strictly below `n`, so
    /// the frame genuinely exceeded the band budget).
    pub band_rows: Option<usize>,
    /// For `"ooc"` entries: peak carried seam runs across band boundaries —
    /// the `O(cols + live)` witness, at most `n/2 + 1`.
    pub peak_carried_runs: Option<usize>,
    /// For `"ooc"` entries: the retired label set matched the whole-frame
    /// engine's component labels exactly.
    pub components_match: Option<bool>,
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct TiledReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// `std::thread::available_parallelism()` on the recording host.
    pub host_threads: usize,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All timed points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale.
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "checker"];
    if quick {
        (FAMILIES, &[64, 128, 256])
    } else {
        (FAMILIES, &[512, 1024, 2048])
    }
}

/// Runs the sweep. `progress` receives one line per timed point. The fast
/// reference and every tiled shape run as warm registry sessions; the
/// out-of-core point re-streams the frame from memory through
/// [`BitmapRows`] with a quarter-frame band budget.
pub fn run_tiled(quick: bool, mut progress: impl FnMut(&str)) -> TiledReport {
    let (families, sides) = sweep_params(quick);
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut entries = Vec::new();
    let mut fast = EngineKind::Fast.session(1);
    let mut fast_grid = LabelGrid::new_background(1, 1);
    let mut tiled_grid = LabelGrid::new_background(1, 1);
    sweep::drive(families, sides, quick, |p| {
        let (family, n, conn, cid, img, reps) = (p.family, p.n, p.conn, p.cid, p.img, p.reps);
        let (best, mean) = sweep::time_reps(reps, || {
            fast.label_into(std::hint::black_box(img), conn, &mut fast_grid);
        });
        progress(&format!(
            "{family}/{n}/{cid}-conn fast: {:.3} ms",
            best as f64 / 1e6
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            engine: "fast".to_string(),
            tiles: (1, 1),
            threads: 1,
            best_ns: best,
            mean_ns: mean,
            reps,
            bit_identical: None,
            band_rows: None,
            peak_carried_runs: None,
            components_match: None,
        });
        for &(tiles_y, tiles_x) in TILE_SHAPES {
            let mut session = EngineKind::Tiled { tiles_x, tiles_y }.session(TILE_THREADS);
            let (best, mean) = sweep::time_reps(reps, || {
                session.label_into(std::hint::black_box(img), conn, &mut tiled_grid);
            });
            let ok = tiled_grid == fast_grid;
            progress(&format!(
                "{family}/{n}/{cid}-conn tiled {tiles_y}x{tiles_x}: {:.3} ms",
                best as f64 / 1e6
            ));
            entries.push(Entry {
                family: family.to_string(),
                n,
                conn: cid,
                engine: "tiled".to_string(),
                tiles: (tiles_y, tiles_x),
                threads: TILE_THREADS,
                best_ns: best,
                mean_ns: mean,
                reps,
                bit_identical: Some(ok),
                band_rows: None,
                peak_carried_runs: None,
                components_match: None,
            });
        }
        // Out-of-core: a quarter-frame band budget forces ≥ 4 band
        // seams; correctness = the retired label set equals the
        // whole-frame component labels.
        let band_rows = (n / 4).max(1);
        let tiles_x = 2usize;
        let run = label_out_of_core(&mut BitmapRows::new(img), conn, band_rows, tiles_x)
            .expect("in-memory rows cannot fail");
        let mut retired: Vec<u64> = run
            .components
            .iter()
            .map(|rec| rec.label(img.rows()))
            .collect();
        retired.sort_unstable();
        let mut want: Vec<u64> = fast_grid
            .component_stats()
            .iter()
            .map(|s| u64::from(s.label))
            .collect();
        want.sort_unstable();
        let ok = retired == want;
        let (best, mean) = sweep::time_reps(reps, || {
            let mut rows = BitmapRows::new(std::hint::black_box(img));
            label_out_of_core(&mut rows, conn, band_rows, tiles_x).unwrap();
        });
        progress(&format!(
            "{family}/{n}/{cid}-conn ooc@{band_rows} rows: {:.3} ms \
             (peak carried {})",
            best as f64 / 1e6,
            run.stats.peak_carried_runs
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            engine: "ooc".to_string(),
            tiles: (1, tiles_x),
            threads: tiles_x,
            best_ns: best,
            mean_ns: mean,
            reps,
            bit_identical: None,
            band_rows: Some(band_rows),
            peak_carried_runs: Some(run.stats.peak_carried_runs),
            components_match: Some(ok),
        });
    });
    TiledReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        host_threads,
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl TiledReport {
    /// Best time of one recorded point.
    fn best_of(
        &self,
        family: &str,
        n: usize,
        conn: u32,
        engine: &str,
        tiles: (usize, usize),
    ) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| {
                e.family == family
                    && e.n == n
                    && e.conn == conn
                    && e.engine == engine
                    && e.tiles == tiles
            })
            .map(|e| e.best_ns)
    }

    /// Serializes the report. Hand-rolled (the workspace `serde` is a
    /// no-op stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let _ = writeln!(s, "  \"host_threads\": {},", self.host_threads);
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        let shapes: Vec<String> = TILE_SHAPES
            .iter()
            .map(|&(y, x)| format!("[{y}, {x}]"))
            .collect();
        let _ = writeln!(s, "  \"tile_shapes\": [{}],", shapes.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"engine\": {}, \
                 \"tiles_y\": {}, \"tiles_x\": {}, \"threads\": {}, \
                 \"best_ns\": {}, \"mean_ns\": {}, \"reps\": {}",
                json::quote(&e.family),
                e.n,
                e.conn,
                json::quote(&e.engine),
                e.tiles.0,
                e.tiles.1,
                e.threads,
                e.best_ns,
                e.mean_ns,
                e.reps
            );
            if let Some(ok) = e.bit_identical {
                let _ = write!(s, ", \"bit_identical\": {ok}");
            }
            if let Some(b) = e.band_rows {
                let _ = write!(s, ", \"band_rows\": {b}");
            }
            if let Some(p) = e.peak_carried_runs {
                let _ = write!(s, ", \"peak_carried_runs\": {p}");
            }
            if let Some(ok) = e.components_match {
                let _ = write!(s, ", \"components_match\": {ok}");
            }
            s.push('}');
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        // Derived scaling ratios: tiled shape vs the sequential engine.
        s.push_str("  \"speedups\": [\n");
        let mut lines = Vec::new();
        for family in &self.families {
            for &n in &self.sides {
                for &conn in CONNS {
                    let cid = conn_id(conn);
                    let Some(fast) = self.best_of(family, n, cid, "fast", (1, 1)) else {
                        continue;
                    };
                    let ratios: Vec<String> = TILE_SHAPES
                        .iter()
                        .filter_map(|&shape| {
                            let tiled = self.best_of(family, n, cid, "tiled", shape)?;
                            Some(format!(
                                "\"{}x{}\": {:.3}",
                                shape.0,
                                shape.1,
                                fast as f64 / tiled.max(1) as f64
                            ))
                        })
                        .collect();
                    lines.push(format!(
                        "    {{\"family\": {}, \"n\": {}, \"conn\": {}, {}}}",
                        json::quote(family),
                        n,
                        cid,
                        ratios.join(", ")
                    ));
                }
            }
        }
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Validates a tiled-sweep JSON document against the schema. Always
/// enforced: every tiled entry is bit-identical, every out-of-core entry
/// labeled a frame strictly taller than its band budget with the retired
/// set matching the whole-frame engine and carried state within the
/// `n/2 + 1` row bound, and each connectivity is covered by ≥ 2 families ×
/// ≥ 3 sizes × ≥ 3 tile shapes plus at least one out-of-core point. With
/// `require_full` the file must be a full-scale sweep and — when the
/// recording host had ≥ [`MIN_HOST_THREADS`] hardware threads — meet the
/// [`REQUIRED_SPEEDUP`] headline; on narrower hosts (a 1-core CI container
/// cannot exhibit wall-clock speedup) everything else still applies.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale tiled sweep is required".to_string());
    }
    let host_threads = get("host_threads")?
        .as_u64()
        .filter(|&v| v > 0)
        .ok_or("host_threads is not a positive integer")?;
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // (family, n, conn) → {fast seen, tiled shapes seen, ooc seen}.
    type Point = (String, u64, u64, bool, Vec<(u64, u64)>, bool);
    let mut coverage: Vec<Point> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let engine = field("engine")?
            .as_str()
            .ok_or_else(|| ctx("engine is not a string"))?
            .to_string();
        let tiles_y = field("tiles_y")?
            .as_u64()
            .filter(|&t| t > 0)
            .ok_or_else(|| ctx("tiles_y is not a positive integer"))?;
        let tiles_x = field("tiles_x")?
            .as_u64()
            .filter(|&t| t > 0)
            .ok_or_else(|| ctx("tiles_x is not a positive integer"))?;
        field("threads")?
            .as_u64()
            .filter(|&t| t > 0)
            .ok_or_else(|| ctx("threads is not a positive integer"))?;
        let best = field("best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("best_ns is not a positive integer"))?;
        let mean = field("mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("mean_ns is not an integer"))?;
        if mean < best {
            return Err(ctx("mean_ns is below best_ns"));
        }
        field("reps")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("reps is not a positive integer"))?;
        let opt_bool = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_bool())
        };
        match engine.as_str() {
            "fast" => {
                if (tiles_y, tiles_x) != (1, 1) {
                    return Err(ctx("fast entries must record a 1x1 grid"));
                }
            }
            "tiled" => {
                let ok = opt_bool("bit_identical")
                    .ok_or_else(|| ctx("tiled entry lacks bit_identical"))?;
                if !ok {
                    return Err(ctx("labels were not bit-identical to the fast engine"));
                }
            }
            "ooc" => {
                let band = eo
                    .iter()
                    .find(|(k, _)| k == "band_rows")
                    .and_then(|(_, v)| v.as_u64())
                    .ok_or_else(|| ctx("ooc entry lacks band_rows"))?;
                if band >= n {
                    return Err(ctx("ooc band budget must be below the frame height"));
                }
                let peak = eo
                    .iter()
                    .find(|(k, _)| k == "peak_carried_runs")
                    .and_then(|(_, v)| v.as_u64())
                    .ok_or_else(|| ctx("ooc entry lacks peak_carried_runs"))?;
                if peak > n / 2 + 1 {
                    return Err(ctx(&format!(
                        "peak carried runs {peak} exceeds the one-row bound {}",
                        n / 2 + 1
                    )));
                }
                let ok = opt_bool("components_match")
                    .ok_or_else(|| ctx("ooc entry lacks components_match"))?;
                if !ok {
                    return Err(ctx("retired labels did not match the whole-frame engine"));
                }
            }
            other => return Err(ctx(&format!("unknown engine {other:?}"))),
        }
        match coverage
            .iter_mut()
            .find(|(f, m, c, ..)| *f == family && *m == n && *c == conn)
        {
            Some((.., fast_seen, shapes, ooc_seen)) => match engine.as_str() {
                "fast" => *fast_seen = true,
                "tiled" => shapes.push((tiles_y, tiles_x)),
                _ => *ooc_seen = true,
            },
            None => coverage.push((
                family,
                n,
                conn,
                engine == "fast",
                if engine == "tiled" {
                    vec![(tiles_y, tiles_x)]
                } else {
                    Vec::new()
                },
                engine == "ooc",
            )),
        }
    }
    // Coverage: every counted point needs the sequential reference plus ≥ 3
    // distinct tile shapes; each connectivity needs ≥ 2 families × ≥ 3
    // sizes of such points and at least one out-of-core point.
    for want in [4u64, 8] {
        let full_points: Vec<_> = coverage
            .iter()
            .filter(|(_, _, c, fast_seen, shapes, _)| {
                *c == want && *fast_seen && {
                    let mut t = shapes.clone();
                    t.sort_unstable();
                    t.dedup();
                    t.len() >= 3
                }
            })
            .collect();
        let mut fams: Vec<&str> = full_points.iter().map(|(f, ..)| f.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        let mut ns: Vec<u64> = full_points.iter().map(|(_, n, ..)| *n).collect();
        ns.sort_unstable();
        ns.dedup();
        if fams.len() < 2 || ns.len() < 3 {
            return Err(format!(
                "coverage too thin at {want}-connectivity: {} families × {} sizes \
                 with fast + ≥3 tile shapes (need ≥ 2 × ≥ 3)",
                fams.len(),
                ns.len()
            ));
        }
        if !coverage.iter().any(|(_, _, c, .., ooc)| *c == want && *ooc) {
            return Err(format!("no out-of-core point at {want}-connectivity"));
        }
    }
    if require_full && host_threads >= MIN_HOST_THREADS {
        let best_of = |engine: &str, ty: u64, tx: u64| {
            entries.iter().find_map(|e| {
                let eo = e.as_object()?;
                let s = |k: &str| eo.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                (s("family")?.as_str()? == "random50"
                    && s("n")?.as_u64()? == 2048
                    && s("conn")?.as_u64()? == 4
                    && s("engine")?.as_str()? == engine
                    && s("tiles_y")?.as_u64()? == ty
                    && s("tiles_x")?.as_u64()? == tx)
                    .then(|| s("best_ns")?.as_u64())
                    .flatten()
            })
        };
        let fast = best_of("fast", 1, 1).ok_or("no fast entry for random50 @ 2048 (4-conn)")?;
        let tiled =
            best_of("tiled", 2, 2).ok_or("no tiled 2x2 entry for random50 @ 2048 (4-conn)")?;
        let ratio = fast as f64 / tiled.max(1) as f64;
        if ratio < REQUIRED_SPEEDUP {
            return Err(format!(
                "tiled 2x2 is only {ratio:.2}× the fast engine on random50 @ 2048 \
                 (need ≥ {REQUIRED_SPEEDUP}× on a host with ≥ {MIN_HOST_THREADS} threads)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(host_threads: usize) -> TiledReport {
        let mut entries = Vec::new();
        for family in ["random50", "blobs"] {
            for n in [512usize, 1024, 2048] {
                for conn in [4u32, 8] {
                    let point = |engine: &str, tiles, threads, best_ns| Entry {
                        family: family.to_string(),
                        n,
                        conn,
                        engine: engine.to_string(),
                        tiles,
                        threads,
                        best_ns,
                        mean_ns: 4500,
                        reps: 3,
                        bit_identical: (engine == "tiled").then_some(true),
                        band_rows: (engine == "ooc").then_some(n / 4),
                        peak_carried_runs: (engine == "ooc").then_some(n / 8),
                        components_match: (engine == "ooc").then_some(true),
                    };
                    entries.push(point("fast", (1, 1), 1, 4000));
                    for &shape in TILE_SHAPES {
                        entries.push(point("tiled", shape, TILE_THREADS, 2000));
                        // 2× speedup
                    }
                    entries.push(point("ooc", (1, 2), 2, 4400));
                }
            }
        }
        TiledReport {
            scale: "full".to_string(),
            host_threads,
            families: vec!["random50".to_string(), "blobs".to_string()],
            sides: vec![512, 1024, 2048],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report(8).to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report(8).to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_rejects_non_identical_labels() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "tiled" {
                e.bit_identical = Some(false);
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn validation_rejects_mismatched_ooc_components() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "ooc" {
                e.components_match = Some(false);
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("retired"), "{err}");
    }

    #[test]
    fn validation_rejects_unbounded_carried_state() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "ooc" {
                e.peak_carried_runs = Some(e.n); // a full frame of state
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("one-row bound"), "{err}");
    }

    #[test]
    fn validation_rejects_in_core_band_budgets() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "ooc" {
                e.band_rows = Some(e.n); // whole frame resident: not OOC
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("band budget"), "{err}");
    }

    #[test]
    fn full_validation_enforces_the_speedup_on_wide_hosts() {
        let mut report = tiny_report(8);
        for e in &mut report.entries {
            if e.engine == "tiled" {
                e.best_ns = 4000; // no speedup at any shape
            }
        }
        let text = report.to_json();
        validate(&text, false).expect("quick validation ignores the ratio");
        let err = validate(&text, true).unwrap_err();
        assert!(err.contains("1.5"), "{err}");
    }

    #[test]
    fn full_validation_waives_the_speedup_on_narrow_hosts() {
        // Same no-speedup numbers, but recorded on a 1-thread host: the
        // ratio criterion cannot apply there.
        let mut report = tiny_report(1);
        for e in &mut report.entries {
            if e.engine == "tiled" {
                e.best_ns = 4000;
            }
        }
        validate(&report.to_json(), true).expect("narrow-host full validation");
    }

    #[test]
    fn validation_rejects_thin_coverage() {
        let mut report = tiny_report(8);
        report.entries.retain(|e| e.family == "random50");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        let report = run_tiled(true, |_| {});
        validate(&report.to_json(), false).expect("fresh quick sweep validates");
    }
}
