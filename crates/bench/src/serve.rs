//! The `slap-bench serve` sweep: sustained `slapd` throughput under
//! concurrent clients, serialized to `BENCH_serve.json`.
//!
//! For each (family, size, connectivity) workload the sweep binds a real
//! [`slap_serve::Server`] on an ephemeral port and drives it with 1, 4,
//! and 16 concurrent [`slap_serve::Client`]s for a fixed wall-clock
//! window, recording sustained jobs/sec, retries, and the server's own
//! rejection ledger. Every client retries transient rejections
//! (`queue-full`, `deadline`) per its policy, so the headline criterion is
//! loss-free service: **zero failed jobs at every concurrency level**,
//! with [`validate`] also enforcing full coverage — every client count of
//! [`CLIENT_COUNTS`] on every swept workload.
//!
//! The recorded `host_threads` keeps single-core hosts honest: on one CPU
//! the 16-client point measures queueing discipline, not parallel
//! speedup, and the validator deliberately demands no scaling curve.

use crate::baseline::{conn_id, CONNS, SEED};
use crate::json;
use slap_image::{gen, Connectivity};
use slap_serve::{Client, RetryPolicy, ServeConfig, Server};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier stamped into (and required from) every serve file.
pub const SCHEMA: &str = "slap-bench-serve/v1";

/// Concurrency levels every sweep must cover.
pub const CLIENT_COUNTS: &[usize] = &[1, 4, 16];

/// Worker threads the benched server runs.
pub const WORKERS: usize = 2;

/// One measured (family, size, connectivity, clients) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (jobs are `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// Concurrent clients driving the server.
    pub clients: usize,
    /// Measurement window actually elapsed, nanoseconds.
    pub elapsed_ns: u64,
    /// Jobs answered `OK` across all clients inside the window.
    pub jobs_ok: u64,
    /// Jobs that exhausted their retries (the loss-free criterion demands
    /// zero).
    pub failures: u64,
    /// Client-side retries (reconnect + resubmit events).
    pub retries: u64,
    /// Server-side typed rejections during the window (each later retried
    /// into an `OK` by some client, or counted as a failure).
    pub rejected: u64,
    /// Server worker threads.
    pub workers: usize,
}

impl Entry {
    /// Sustained throughput over the measured window.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs_ok as f64 / (self.elapsed_ns as f64 / 1e9).max(1e-9)
    }
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Host hardware threads at measurement time.
    pub host_threads: usize,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All measured points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale: (families, sides, window per point).
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize], Duration) {
    if quick {
        (&["random50"], &[128], Duration::from_millis(250))
    } else {
        (
            &["random50", "blobs"],
            &[128, 256],
            Duration::from_millis(1000),
        )
    }
}

/// Measures one (image, connectivity, clients) point against a fresh
/// server.
fn time_point(
    family: &str,
    n: usize,
    conn: Connectivity,
    clients: usize,
    window: Duration,
) -> Entry {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            conn,
            workers: WORKERS,
            ..ServeConfig::default()
        },
    )
    .expect("bind bench server");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    let drivers: Vec<_> = (0..clients)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let family = family.to_string();
            std::thread::spawn(move || {
                // Distinct seeds so concurrent clients don't serve one
                // identical job from the page cache of the allocator.
                let img = gen::by_name(&family, n, SEED + i as u64).expect("workload");
                let mut client = Client::with_policy(
                    addr,
                    RetryPolicy {
                        base_delay: Duration::from_millis(2),
                        jitter_seed: 0x5eed + i as u64,
                        ..RetryPolicy::default()
                    },
                );
                let (mut ok, mut failures) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    match client.label(&img) {
                        Ok(_) => ok += 1,
                        Err(_) => failures += 1,
                    }
                }
                (ok, failures, client.retries())
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let (mut jobs_ok, mut failures, mut retries) = (0u64, 0u64, 0u64);
    for d in drivers {
        let (o, f, r) = d.join().expect("bench client");
        jobs_ok += o;
        failures += f;
        retries += r;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let stats = server.shutdown();
    Entry {
        family: family.to_string(),
        n,
        conn: conn_id(conn),
        clients,
        elapsed_ns,
        jobs_ok,
        failures,
        retries,
        rejected: stats.rejected(),
        workers: WORKERS,
    }
}

/// Runs the sweep. `progress` receives one line per measured point.
pub fn run_serve(quick: bool, mut progress: impl FnMut(&str)) -> ServeReport {
    let (families, sides, window) = sweep_params(quick);
    let mut entries = Vec::new();
    for &family in families {
        for &n in sides {
            for &conn in CONNS {
                for &clients in CLIENT_COUNTS {
                    let entry = time_point(family, n, conn, clients, window);
                    progress(&format!(
                        "{family}/{n}/{}-conn x{clients}: {:.0} jobs/s \
                         ({} ok, {} retries, {} rejected, {} failed)",
                        entry.conn,
                        entry.jobs_per_sec(),
                        entry.jobs_ok,
                        entry.retries,
                        entry.rejected,
                        entry.failures,
                    ));
                    entries.push(entry);
                }
            }
        }
    }
    ServeReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl ServeReport {
    /// Serializes the report. Hand-rolled (the workspace `serde` is a no-op
    /// stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let _ = writeln!(s, "  \"host_threads\": {},", self.host_threads);
        let _ = writeln!(s, "  \"workers\": {WORKERS},");
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        let counts: Vec<String> = CLIENT_COUNTS.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(s, "  \"client_counts\": [{}],", counts.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"clients\": {}, \
                 \"elapsed_ns\": {}, \"jobs_ok\": {}, \"failures\": {}, \
                 \"retries\": {}, \"rejected\": {}, \"workers\": {}, \
                 \"jobs_per_sec\": {:.1}}}",
                json::quote(&e.family),
                e.n,
                e.conn,
                e.clients,
                e.elapsed_ns,
                e.jobs_ok,
                e.failures,
                e.retries,
                e.rejected,
                e.workers,
                e.jobs_per_sec(),
            );
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Validates a serve-sweep JSON document against the schema. Headline
/// criteria: every entry served at least one job with **zero failures**
/// (loss-free service under retry), and coverage is full — every client
/// count in [`CLIENT_COUNTS`] appears for every swept (family, size,
/// connectivity) workload. With `require_full` the file must also record a
/// full-scale sweep.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale serve sweep is required".to_string());
    }
    get("host_threads")?
        .as_u64()
        .filter(|&t| t > 0)
        .ok_or("host_threads is not a positive integer")?;
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // (family, n, conn) → client counts covered.
    let mut coverage: Vec<((String, u64, u64), Vec<u64>)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let clients = field("clients")?
            .as_u64()
            .filter(|&c| CLIENT_COUNTS.contains(&(c as usize)))
            .ok_or_else(|| ctx("clients is not one of the swept counts"))?;
        field("elapsed_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("elapsed_ns is not a positive integer"))?;
        let jobs_ok = field("jobs_ok")?
            .as_u64()
            .ok_or_else(|| ctx("jobs_ok is not an integer"))?;
        if jobs_ok == 0 {
            return Err(ctx("no jobs completed inside the window"));
        }
        let failures = field("failures")?
            .as_u64()
            .ok_or_else(|| ctx("failures is not an integer"))?;
        if failures > 0 {
            return Err(ctx(&format!(
                "loss-free criterion violated: {failures} job(s) exhausted \
                 their retries ({family}/{n} @ {clients} clients)"
            )));
        }
        field("retries")?
            .as_u64()
            .ok_or_else(|| ctx("retries is not an integer"))?;
        field("rejected")?
            .as_u64()
            .ok_or_else(|| ctx("rejected is not an integer"))?;
        field("workers")?
            .as_u64()
            .filter(|&w| w > 0)
            .ok_or_else(|| ctx("workers is not a positive integer"))?;
        let key = (family, n, conn);
        match coverage.iter_mut().find(|(k, _)| *k == key) {
            Some((_, counts)) => counts.push(clients),
            None => coverage.push((key, vec![clients])),
        }
    }
    // Full coverage: every swept workload measured at every client count.
    for ((family, n, conn), mut counts) in coverage {
        counts.sort_unstable();
        counts.dedup();
        let want: Vec<u64> = CLIENT_COUNTS.iter().map(|&c| c as u64).collect();
        if counts != want {
            return Err(format!(
                "coverage hole: {family}/{n}/{conn}-conn measured at client \
                 counts {counts:?}, need exactly {want:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ServeReport {
        let mut entries = Vec::new();
        for family in ["random50", "blobs"] {
            for n in [128usize, 256] {
                for conn in [4u32, 8] {
                    for &clients in CLIENT_COUNTS {
                        entries.push(Entry {
                            family: family.to_string(),
                            n,
                            conn,
                            clients,
                            elapsed_ns: 1_000_000_000,
                            jobs_ok: 100 * clients as u64,
                            failures: 0,
                            retries: 3,
                            rejected: 3,
                            workers: WORKERS,
                        });
                    }
                }
            }
        }
        ServeReport {
            scale: "full".to_string(),
            host_threads: 1,
            families: vec!["random50".to_string(), "blobs".to_string()],
            sides: vec![128, 256],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report().to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report().to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_enforces_loss_free_service() {
        let mut report = tiny_report();
        report.entries[2].failures = 1;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("loss-free"), "{err}");
    }

    #[test]
    fn validation_enforces_full_client_coverage() {
        let mut report = tiny_report();
        report
            .entries
            .retain(|e| !(e.family == "blobs" && e.n == 256 && e.conn == 8 && e.clients == 16));
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage hole"), "{err}");
    }

    #[test]
    fn validation_rejects_idle_windows() {
        let mut report = tiny_report();
        report.entries[0].jobs_ok = 0;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("no jobs"), "{err}");
    }

    #[test]
    fn validation_requires_full_scale_when_asked() {
        let mut report = tiny_report();
        report.scale = "quick".to_string();
        assert!(validate(&report.to_json(), false).is_ok());
        let err = validate(&report.to_json(), true).unwrap_err();
        assert!(err.contains("full-scale"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        // One real (tiny) point end to end: a live server, one client,
        // a short window — must produce a loss-free, schema-valid entry.
        let entry = time_point(
            "random50",
            64,
            slap_image::Connectivity::Four,
            1,
            Duration::from_millis(50),
        );
        assert!(entry.jobs_ok > 0);
        assert_eq!(entry.failures, 0);
    }
}
