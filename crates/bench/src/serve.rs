//! The `slap-bench serve` sweep: sustained `slapd` throughput under
//! concurrent clients, serialized to `BENCH_serve.json`.
//!
//! For each (family, size, connectivity, mode) workload the sweep binds a
//! real [`slap_serve::Server`] on an ephemeral port and drives it with 1,
//! 4, and 16 concurrent [`slap_serve::Client`]s for a fixed wall-clock
//! window, recording sustained jobs/sec, retries, and the server's own
//! rejection ledger. Three response modes are measured per point: `grid`
//! (v1 whole-grid payloads), `stream` (protocol-v2 feature records,
//! in-core), and `ooc` (stream mode against a server whose routing
//! threshold forces every job out-of-core). Every client retries
//! transient rejections (`queue-full`, `deadline`) per its policy, so the
//! headline criterion is loss-free service: **zero failed jobs at every
//! concurrency level**, with [`validate`] also enforcing full coverage —
//! every client count of [`CLIENT_COUNTS`] in every mode of [`MODES`] on
//! every swept workload — and the paper's carried-state bound on the
//! streaming paths: `peak_carried_runs ≤ n/2 + 1`, i.e. `O(cols + live)`
//! server memory per out-of-core job rather than `O(n²)`.
//!
//! The recorded `host_threads` keeps single-core hosts honest: on one CPU
//! the 16-client point measures queueing discipline, not parallel
//! speedup, and the validator deliberately demands no scaling curve.

use crate::json;
use crate::sweep::{conn_id, CONNS, SEED};
use slap_image::{gen, Connectivity};
use slap_serve::{Client, RetryPolicy, ServeConfig, Server};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema identifier stamped into (and required from) every serve file.
pub const SCHEMA: &str = "slap-bench-serve/v2";

/// Concurrency levels every sweep must cover.
pub const CLIENT_COUNTS: &[usize] = &[1, 4, 16];

/// Response modes every sweep must cover. `ooc` is stream mode against a
/// server whose `max_pixels` routing threshold (set to `n²/4`) pushes
/// every benched job through the out-of-core band scheduler.
pub const MODES: &[&str] = &["grid", "stream", "ooc"];

/// Worker threads the benched server runs.
pub const WORKERS: usize = 2;

/// One measured (family, size, connectivity, mode, clients) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (jobs are `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// Response mode measured: one of [`MODES`].
    pub mode: String,
    /// Concurrent clients driving the server.
    pub clients: usize,
    /// Measurement window actually elapsed, nanoseconds.
    pub elapsed_ns: u64,
    /// Jobs answered `OK` across all clients inside the window.
    pub jobs_ok: u64,
    /// Jobs that exhausted their retries (the loss-free criterion demands
    /// zero).
    pub failures: u64,
    /// Client-side retries (reconnect + resubmit events).
    pub retries: u64,
    /// Server-side typed rejections during the window (each later retried
    /// into an `OK` by some client, or counted as a failure).
    pub rejected: u64,
    /// Jobs the server routed through the out-of-core band scheduler.
    pub ooc_jobs: u64,
    /// The server's peak carried runs across all streamed jobs — the
    /// paper's `O(cols + live)` state, which the validator bounds by
    /// `n/2 + 1` on the streaming paths.
    pub peak_carried_runs: u64,
    /// Server worker threads.
    pub workers: usize,
}

impl Entry {
    /// Sustained throughput over the measured window.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs_ok as f64 / (self.elapsed_ns as f64 / 1e9).max(1e-9)
    }
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Host hardware threads at measurement time.
    pub host_threads: usize,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All measured points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale: (families, sides, window per point).
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize], Duration) {
    if quick {
        (&["random50"], &[128], Duration::from_millis(250))
    } else {
        (
            &["random50", "blobs"],
            &[128, 256],
            Duration::from_millis(1000),
        )
    }
}

/// Measures one (image, connectivity, mode, clients) point against a
/// fresh server.
fn time_point(
    family: &str,
    n: usize,
    conn: Connectivity,
    mode: &str,
    clients: usize,
    window: Duration,
) -> Entry {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            conn,
            workers: WORKERS,
            // The ooc point forces routing: every n×n job crosses the
            // threshold and runs banded with O(cols) carried state.
            max_pixels: if mode == "ooc" {
                ((n * n) / 4) as u64
            } else {
                ServeConfig::default().max_pixels
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind bench server");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    let drivers: Vec<_> = (0..clients)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let family = family.to_string();
            let grid_mode = mode == "grid";
            std::thread::spawn(move || {
                // Distinct seeds so concurrent clients don't serve one
                // identical job from the page cache of the allocator.
                let img = gen::by_name(&family, n, SEED + i as u64).expect("workload");
                let mut client = Client::with_policy(
                    addr,
                    RetryPolicy {
                        base_delay: Duration::from_millis(2),
                        jitter_seed: 0x5eed + i as u64,
                        ..RetryPolicy::default()
                    },
                );
                let (mut ok, mut failures) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let outcome = if grid_mode {
                        client.label(&img).map(|_| ())
                    } else {
                        client.label_stream(&img).map(|_| ())
                    };
                    match outcome {
                        Ok(()) => ok += 1,
                        Err(_) => failures += 1,
                    }
                }
                (ok, failures, client.retries())
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let (mut jobs_ok, mut failures, mut retries) = (0u64, 0u64, 0u64);
    for d in drivers {
        let (o, f, r) = d.join().expect("bench client");
        jobs_ok += o;
        failures += f;
        retries += r;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let stats = server.shutdown();
    Entry {
        family: family.to_string(),
        n,
        conn: conn_id(conn),
        mode: mode.to_string(),
        clients,
        elapsed_ns,
        jobs_ok,
        failures,
        retries,
        rejected: stats.rejected(),
        ooc_jobs: stats.jobs_ooc,
        peak_carried_runs: stats.peak_carried_runs,
        workers: WORKERS,
    }
}

/// Runs the sweep. `progress` receives one line per measured point.
pub fn run_serve(quick: bool, mut progress: impl FnMut(&str)) -> ServeReport {
    let (families, sides, window) = sweep_params(quick);
    let mut entries = Vec::new();
    for &family in families {
        for &n in sides {
            for &conn in CONNS {
                for &mode in MODES {
                    for &clients in CLIENT_COUNTS {
                        let entry = time_point(family, n, conn, mode, clients, window);
                        progress(&format!(
                            "{family}/{n}/{}-conn/{mode} x{clients}: {:.0} jobs/s \
                             ({} ok, {} retries, {} rejected, {} failed, \
                             {} ooc, peak {} runs)",
                            entry.conn,
                            entry.jobs_per_sec(),
                            entry.jobs_ok,
                            entry.retries,
                            entry.rejected,
                            entry.failures,
                            entry.ooc_jobs,
                            entry.peak_carried_runs,
                        ));
                        entries.push(entry);
                    }
                }
            }
        }
    }
    ServeReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl ServeReport {
    /// Serializes the report. Hand-rolled (the workspace `serde` is a no-op
    /// stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let _ = writeln!(s, "  \"host_threads\": {},", self.host_threads);
        let _ = writeln!(s, "  \"workers\": {WORKERS},");
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        let counts: Vec<String> = CLIENT_COUNTS.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(s, "  \"client_counts\": [{}],", counts.join(", "));
        let modes: Vec<String> = MODES.iter().map(|m| json::quote(m)).collect();
        let _ = writeln!(s, "  \"modes\": [{}],", modes.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"mode\": {}, \
                 \"clients\": {}, \
                 \"elapsed_ns\": {}, \"jobs_ok\": {}, \"failures\": {}, \
                 \"retries\": {}, \"rejected\": {}, \"ooc_jobs\": {}, \
                 \"peak_carried_runs\": {}, \"workers\": {}, \
                 \"jobs_per_sec\": {:.1}}}",
                json::quote(&e.family),
                e.n,
                e.conn,
                json::quote(&e.mode),
                e.clients,
                e.elapsed_ns,
                e.jobs_ok,
                e.failures,
                e.retries,
                e.rejected,
                e.ooc_jobs,
                e.peak_carried_runs,
                e.workers,
                e.jobs_per_sec(),
            );
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Validates a serve-sweep JSON document against the schema. Headline
/// criteria: every entry served at least one job with **zero failures**
/// (loss-free service under retry); coverage is full — every client
/// count in [`CLIENT_COUNTS`] appears for every swept (family, size,
/// connectivity, mode) workload; and the streaming paths honored the
/// paper's memory bound — `peak_carried_runs ≤ n/2 + 1`, with every `ooc`
/// job actually routed out-of-core and grid entries carrying no stream
/// state at all. With `require_full` the file must also record a
/// full-scale sweep.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale serve sweep is required".to_string());
    }
    get("host_threads")?
        .as_u64()
        .filter(|&t| t > 0)
        .ok_or("host_threads is not a positive integer")?;
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // (family, n, conn, mode) → client counts covered.
    type PointKey = (String, u64, u64, String);
    let mut coverage: Vec<(PointKey, Vec<u64>)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let mode = field("mode")?
            .as_str()
            .filter(|m| MODES.contains(m))
            .ok_or_else(|| ctx("mode is not one of the swept modes"))?
            .to_string();
        let clients = field("clients")?
            .as_u64()
            .filter(|&c| CLIENT_COUNTS.contains(&(c as usize)))
            .ok_or_else(|| ctx("clients is not one of the swept counts"))?;
        field("elapsed_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("elapsed_ns is not a positive integer"))?;
        let jobs_ok = field("jobs_ok")?
            .as_u64()
            .ok_or_else(|| ctx("jobs_ok is not an integer"))?;
        if jobs_ok == 0 {
            return Err(ctx("no jobs completed inside the window"));
        }
        let failures = field("failures")?
            .as_u64()
            .ok_or_else(|| ctx("failures is not an integer"))?;
        if failures > 0 {
            return Err(ctx(&format!(
                "loss-free criterion violated: {failures} job(s) exhausted \
                 their retries ({family}/{n} @ {clients} clients)"
            )));
        }
        field("retries")?
            .as_u64()
            .ok_or_else(|| ctx("retries is not an integer"))?;
        field("rejected")?
            .as_u64()
            .ok_or_else(|| ctx("rejected is not an integer"))?;
        let ooc_jobs = field("ooc_jobs")?
            .as_u64()
            .ok_or_else(|| ctx("ooc_jobs is not an integer"))?;
        let peak_carried = field("peak_carried_runs")?
            .as_u64()
            .ok_or_else(|| ctx("peak_carried_runs is not an integer"))?;
        field("workers")?
            .as_u64()
            .filter(|&w| w > 0)
            .ok_or_else(|| ctx("workers is not a positive integer"))?;
        match mode.as_str() {
            // Grid jobs never touch the streaming engines.
            "grid" => {
                if ooc_jobs != 0 || peak_carried != 0 {
                    return Err(ctx("grid entries must carry no stream state"));
                }
            }
            // Streaming paths honor the paper's O(cols + live) bound.
            _ => {
                if peak_carried > n / 2 + 1 {
                    return Err(ctx(&format!(
                        "carried-state bound violated: peak {peak_carried} \
                         runs > n/2+1 = {} ({family}/{n}/{mode})",
                        n / 2 + 1
                    )));
                }
                match mode.as_str() {
                    // Every admitted job must actually have routed
                    // out-of-core (loss-free admission through the
                    // threshold).
                    "ooc" if ooc_jobs != jobs_ok => {
                        return Err(ctx(&format!(
                            "ooc routing hole: {jobs_ok} jobs ok but only \
                             {ooc_jobs} routed out-of-core"
                        )));
                    }
                    "stream" if ooc_jobs != 0 => {
                        return Err(ctx("in-core stream entries must not route ooc"));
                    }
                    _ => {}
                }
            }
        }
        let key = (family, n, conn, mode);
        match coverage.iter_mut().find(|(k, _)| *k == key) {
            Some((_, counts)) => counts.push(clients),
            None => coverage.push((key, vec![clients])),
        }
    }
    // Full coverage: every swept workload measured at every client count
    // in every mode.
    let mode_count = coverage
        .iter()
        .map(|((f, n, c, _), _)| (f.clone(), *n, *c))
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        * MODES.len();
    if coverage.len() != mode_count {
        return Err(format!(
            "coverage hole: {} (family, n, conn, mode) groups, expected {}",
            coverage.len(),
            mode_count
        ));
    }
    for ((family, n, conn, mode), mut counts) in coverage {
        counts.sort_unstable();
        counts.dedup();
        let want: Vec<u64> = CLIENT_COUNTS.iter().map(|&c| c as u64).collect();
        if counts != want {
            return Err(format!(
                "coverage hole: {family}/{n}/{conn}-conn/{mode} measured at \
                 client counts {counts:?}, need exactly {want:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ServeReport {
        let mut entries = Vec::new();
        for family in ["random50", "blobs"] {
            for n in [128usize, 256] {
                for conn in [4u32, 8] {
                    for mode in MODES {
                        for &clients in CLIENT_COUNTS {
                            let streaming = *mode != "grid";
                            entries.push(Entry {
                                family: family.to_string(),
                                n,
                                conn,
                                mode: mode.to_string(),
                                clients,
                                elapsed_ns: 1_000_000_000,
                                jobs_ok: 100 * clients as u64,
                                failures: 0,
                                retries: 3,
                                rejected: 3,
                                ooc_jobs: if *mode == "ooc" {
                                    100 * clients as u64
                                } else {
                                    0
                                },
                                peak_carried_runs: if streaming { (n / 2) as u64 } else { 0 },
                                workers: WORKERS,
                            });
                        }
                    }
                }
            }
        }
        ServeReport {
            scale: "full".to_string(),
            host_threads: 1,
            families: vec!["random50".to_string(), "blobs".to_string()],
            sides: vec![128, 256],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report().to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report().to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_enforces_loss_free_service() {
        let mut report = tiny_report();
        report.entries[2].failures = 1;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("loss-free"), "{err}");
    }

    #[test]
    fn validation_enforces_full_client_coverage() {
        let mut report = tiny_report();
        report
            .entries
            .retain(|e| !(e.family == "blobs" && e.n == 256 && e.conn == 8 && e.clients == 16));
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage hole"), "{err}");
    }

    #[test]
    fn validation_enforces_full_mode_coverage() {
        let mut report = tiny_report();
        report
            .entries
            .retain(|e| !(e.family == "blobs" && e.n == 256 && e.conn == 8 && e.mode == "ooc"));
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage hole"), "{err}");
    }

    #[test]
    fn validation_enforces_the_carried_state_bound() {
        let mut report = tiny_report();
        let e = report.entries.iter_mut().find(|e| e.mode == "ooc").unwrap();
        e.peak_carried_runs = (e.n * e.n) as u64; // O(n²): the bug the bound catches
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("carried-state bound"), "{err}");
    }

    #[test]
    fn validation_enforces_ooc_routing() {
        let mut report = tiny_report();
        let e = report.entries.iter_mut().find(|e| e.mode == "ooc").unwrap();
        e.ooc_jobs = e.jobs_ok - 1;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("ooc routing hole"), "{err}");
    }

    #[test]
    fn validation_rejects_stream_state_on_grid_entries() {
        let mut report = tiny_report();
        let e = report
            .entries
            .iter_mut()
            .find(|e| e.mode == "grid")
            .unwrap();
        e.peak_carried_runs = 7;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("no stream state"), "{err}");
    }

    #[test]
    fn validation_rejects_idle_windows() {
        let mut report = tiny_report();
        report.entries[0].jobs_ok = 0;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("no jobs"), "{err}");
    }

    #[test]
    fn validation_requires_full_scale_when_asked() {
        let mut report = tiny_report();
        report.scale = "quick".to_string();
        assert!(validate(&report.to_json(), false).is_ok());
        let err = validate(&report.to_json(), true).unwrap_err();
        assert!(err.contains("full-scale"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        // One real (tiny) point per mode, end to end: a live server, one
        // client, a short window — loss-free, and the ooc point actually
        // routes out-of-core with bounded carried state.
        for &mode in MODES {
            let entry = time_point(
                "random50",
                64,
                slap_image::Connectivity::Four,
                mode,
                1,
                Duration::from_millis(50),
            );
            assert!(entry.jobs_ok > 0, "{mode}");
            assert_eq!(entry.failures, 0, "{mode}");
            match mode {
                "grid" => assert_eq!(entry.peak_carried_runs, 0),
                "stream" => assert_eq!(entry.ooc_jobs, 0),
                _ => {
                    assert_eq!(entry.ooc_jobs, entry.jobs_ok);
                    assert!(entry.peak_carried_runs <= 64 / 2 + 1);
                }
            }
        }
    }
}
