//! The `slap-bench propagate` sweep: the iterative label-equivalence engine
//! vs. the BFS oracle on the host, and the GPU-style propagation kernel vs.
//! the paper's pipeline Algorithm CC on the lock-step machine, serialized to
//! `BENCH_propagate.json`.
//!
//! The host section times [`EngineKind::Propagate`] against
//! [`EngineKind::Bfs`] on every point — including the adversarial
//! `spiral` / `serpentine` / `hilbert` families, whose long snaking
//! components are the worst case for naive neighbor relaxation — asserting
//! bit-identical labels while timing and recording the engine's convergence
//! counters (`iterations`, `reduction_passes`). The lock-step section runs
//! the paper's pipeline ([`label_components_lockstep`]) and the iterative
//! propagation kernel ([`propagate_components_lockstep`]) on identical
//! generated inputs, recording exact machine rounds for both — the
//! PRAM-style step-count comparison behind ARCHITECTURE.md's
//! pipeline-vs-label-equivalence discussion. [`validate`] enforces
//! bit-identity, per-entry convergence counters, lock-step coverage under
//! both adjacency conventions, and (with `require_full`) the headline
//! criterion: host propagate ≥ [`REQUIRED_SPEEDUP`]× the BFS oracle on
//! `random50` @ 2048² under both connectivities.

use crate::json;
use crate::sweep::{self, conn_id, CONNS, SEED};
use slap_cc::engine::EngineKind;
use slap_cc::lockstep_cc::label_components_lockstep;
use slap_cc::lockstep_propagate::propagate_components_lockstep;
use slap_cc::CcOptions;
use slap_image::LabelGrid;
use slap_unionfind::RankHalvingUf;
use std::fmt::Write as _;

/// Schema identifier stamped into (and required from) every propagate file.
pub const SCHEMA: &str = "slap-bench-propagate/v1";

/// The headline speedup `validate` demands from the propagate engine over
/// the BFS oracle on `random50` @ 2048², under **both** connectivities.
pub const REQUIRED_SPEEDUP: f64 = 2.0;

/// Adversarial workload families the sweep must cover: long snaking
/// components that maximize label-travel distance for naive relaxation.
pub const ADVERSARIAL_FAMILIES: &[&str] = &["spiral", "serpentine", "hilbert"];

/// One timed host (family, size, connectivity, engine) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// `"oracle-bfs"` (identity reference) or `"propagate"`.
    pub engine: String,
    /// Best wall-clock nanoseconds over the repetitions.
    pub best_ns: u64,
    /// Mean wall-clock nanoseconds over the repetitions.
    pub mean_ns: u64,
    /// Number of timed repetitions.
    pub reps: usize,
    /// For `"propagate"` entries: labels were bit-identical to the oracle.
    pub bit_identical: Option<bool>,
    /// For `"propagate"` entries: relaxation sweep iterations to converge
    /// (including the final no-change sweep).
    pub iterations: Option<usize>,
    /// For `"propagate"` entries: pointer-jumping label-reduction passes.
    pub reduction_passes: Option<usize>,
}

/// One lock-step machine comparison point: the paper's pipeline and the
/// iterative propagation kernel on the same generated input.
#[derive(Clone, Debug)]
pub struct LockstepEntry {
    /// Workload family name.
    pub family: String,
    /// Image side.
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// Total simulated rounds of the pipeline Algorithm CC run.
    pub pipeline_rounds: u64,
    /// Total simulated rounds of the propagation run.
    pub propagate_rounds: u64,
    /// Total PE ticks of the propagation run (the PRAM-style work).
    pub propagate_ticks: u64,
    /// Jacobi iterations of the propagation run (including the final
    /// no-change iteration proving convergence).
    pub propagate_iterations: u64,
    /// Both kernels produced the same labeling on this input.
    pub labels_match: bool,
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct PropagateReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Families swept by the host section.
    pub families: Vec<String>,
    /// Sides swept by the host section.
    pub sides: Vec<usize>,
    /// All timed host points.
    pub entries: Vec<Entry>,
    /// All lock-step comparison points.
    pub lockstep: Vec<LockstepEntry>,
}

/// Host sweep parameters per scale.
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "spiral", "serpentine", "hilbert"];
    if quick {
        (FAMILIES, &[64, 128, 256])
    } else {
        (FAMILIES, &[256, 512, 1024, 2048])
    }
}

/// Lock-step sweep parameters per scale: small frames (the simulator pays
/// `O(rounds × PEs)` host work, and the propagation kernel's rounds grow
/// with label-travel distance).
fn lockstep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "spiral"];
    if quick {
        (FAMILIES, &[16])
    } else {
        (FAMILIES, &[32])
    }
}

/// Runs the sweep. `progress` receives one line per timed point. The host
/// engines are warm registry sessions; the oracle doubles as the
/// bit-identity reference.
pub fn run_propagate(quick: bool, mut progress: impl FnMut(&str)) -> PropagateReport {
    let (families, sides) = sweep_params(quick);
    let mut entries = Vec::new();
    let mut oracle = EngineKind::Bfs.session(1);
    let mut prop = EngineKind::Propagate.session(1);
    let mut oracle_grid = LabelGrid::new_background(1, 1);
    let mut prop_grid = LabelGrid::new_background(1, 1);
    sweep::drive(families, sides, quick, |p| {
        let (family, n, conn, cid, img, reps) = (p.family, p.n, p.conn, p.cid, p.img, p.reps);
        let (best, mean) = sweep::time_reps(reps, || {
            oracle.label_into(std::hint::black_box(img), conn, &mut oracle_grid);
        });
        progress(&format!(
            "{family}/{n}/{cid}-conn oracle-bfs: {:.3} ms",
            best as f64 / 1e6
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            engine: "oracle-bfs".to_string(),
            best_ns: best,
            mean_ns: mean,
            reps,
            bit_identical: None,
            iterations: None,
            reduction_passes: None,
        });
        let mut stats = None;
        let (best, mean) = sweep::time_reps(reps, || {
            stats = Some(prop.label_into(std::hint::black_box(img), conn, &mut prop_grid));
        });
        let stats = stats.expect("at least one timed repetition ran");
        let ok = prop_grid == oracle_grid;
        progress(&format!(
            "{family}/{n}/{cid}-conn propagate: {:.3} ms ({} iterations, {} reductions)",
            best as f64 / 1e6,
            stats.iterations,
            stats.reduction_passes
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            engine: "propagate".to_string(),
            best_ns: best,
            mean_ns: mean,
            reps,
            bit_identical: Some(ok),
            iterations: Some(stats.iterations),
            reduction_passes: Some(stats.reduction_passes),
        });
    });
    // Lock-step machine comparison: the pipeline and the propagation kernel
    // on identical inputs, exact rounds for both.
    let (ls_families, ls_sides) = lockstep_params(quick);
    let mut lockstep = Vec::new();
    sweep::drive(ls_families, ls_sides, quick, |p| {
        let opts = CcOptions {
            connectivity: p.conn,
            ..CcOptions::default()
        };
        let (cc_run, cc_report) = label_components_lockstep::<RankHalvingUf>(p.img, &opts, 1);
        let (prop_grid, prop_report) = propagate_components_lockstep(p.img, p.conn, 1);
        let labels_match = cc_run.labels == prop_grid;
        progress(&format!(
            "{}/{}/{}-conn lockstep: pipeline {} rounds, propagate {} rounds \
             ({} iterations)",
            p.family,
            p.n,
            p.cid,
            cc_report.total_rounds,
            prop_report.rounds,
            prop_report.iterations
        ));
        lockstep.push(LockstepEntry {
            family: p.family.to_string(),
            n: p.n,
            conn: p.cid,
            pipeline_rounds: cc_report.total_rounds,
            propagate_rounds: prop_report.rounds,
            propagate_ticks: prop_report.ticks,
            propagate_iterations: prop_report.iterations,
            labels_match,
        });
    });
    PropagateReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
        lockstep,
    }
}

impl PropagateReport {
    /// Best time of one recorded host point.
    fn best_of(&self, family: &str, n: usize, conn: u32, engine: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.family == family && e.n == n && e.conn == conn && e.engine == engine)
            .map(|e| e.best_ns)
    }

    /// Serializes the report. Hand-rolled (the workspace `serde` is a no-op
    /// stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"engine\": {}, \
                 \"best_ns\": {}, \"mean_ns\": {}, \"reps\": {}",
                json::quote(&e.family),
                e.n,
                e.conn,
                json::quote(&e.engine),
                e.best_ns,
                e.mean_ns,
                e.reps
            );
            if let Some(ok) = e.bit_identical {
                let _ = write!(s, ", \"bit_identical\": {ok}");
            }
            if let Some(it) = e.iterations {
                let _ = write!(s, ", \"iterations\": {it}");
            }
            if let Some(rp) = e.reduction_passes {
                let _ = write!(s, ", \"reduction_passes\": {rp}");
            }
            s.push('}');
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str("  \"lockstep\": [\n");
        for (i, e) in self.lockstep.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"pipeline_rounds\": {}, \
                 \"propagate_rounds\": {}, \"propagate_ticks\": {}, \
                 \"propagate_iterations\": {}, \"labels_match\": {}}}",
                json::quote(&e.family),
                e.n,
                e.conn,
                e.pipeline_rounds,
                e.propagate_rounds,
                e.propagate_ticks,
                e.propagate_iterations,
                e.labels_match
            );
            if i + 1 < self.lockstep.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        // Derived headline ratios: propagate vs the oracle per point.
        s.push_str("  \"speedups\": [\n");
        let mut lines = Vec::new();
        for family in &self.families {
            for &n in &self.sides {
                for &conn in CONNS {
                    let cid = conn_id(conn);
                    let (Some(oracle), Some(prop)) = (
                        self.best_of(family, n, cid, "oracle-bfs"),
                        self.best_of(family, n, cid, "propagate"),
                    ) else {
                        continue;
                    };
                    lines.push(format!(
                        "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \
                         \"over_oracle\": {:.3}}}",
                        json::quote(family),
                        n,
                        cid,
                        oracle as f64 / prop.max(1) as f64
                    ));
                }
            }
        }
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Validates a propagate-sweep JSON document against the schema. Always
/// enforced: every propagate entry is bit-identical to the oracle and
/// records its convergence counters (`iterations ≥ 1`), host coverage is ≥ 3
/// families × ≥ 3 sizes per connectivity including every adversarial family
/// in [`ADVERSARIAL_FAMILIES`], and the lock-step section compares both
/// kernels (matching labels, `propagate_rounds ≥ propagate_iterations ≥ 1`)
/// under both connectivities. With `require_full` the file must be a
/// full-scale sweep meeting the [`REQUIRED_SPEEDUP`] headline on `random50`
/// @ 2048² under both connectivities.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale propagate sweep is required".to_string());
    }
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // (family, n, conn) → {oracle seen, propagate seen}.
    let mut coverage: Vec<(String, u64, u64, bool, bool)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let engine = field("engine")?
            .as_str()
            .ok_or_else(|| ctx("engine is not a string"))?
            .to_string();
        let best = field("best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("best_ns is not a positive integer"))?;
        let mean = field("mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("mean_ns is not an integer"))?;
        if mean < best {
            return Err(ctx("mean_ns is below best_ns"));
        }
        field("reps")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("reps is not a positive integer"))?;
        match engine.as_str() {
            "oracle-bfs" => {}
            "propagate" => {
                let ok = eo
                    .iter()
                    .find(|(k, _)| k == "bit_identical")
                    .and_then(|(_, v)| v.as_bool())
                    .ok_or_else(|| ctx("propagate entry lacks bit_identical"))?;
                if !ok {
                    return Err(ctx("labels were not bit-identical to the oracle"));
                }
                let iters = eo
                    .iter()
                    .find(|(k, _)| k == "iterations")
                    .and_then(|(_, v)| v.as_u64())
                    .ok_or_else(|| ctx("propagate entry lacks iterations"))?;
                if iters == 0 {
                    return Err(ctx("propagate iterations must be at least 1"));
                }
                eo.iter()
                    .find(|(k, _)| k == "reduction_passes")
                    .and_then(|(_, v)| v.as_u64())
                    .ok_or_else(|| ctx("propagate entry lacks reduction_passes"))?;
            }
            other => return Err(ctx(&format!("unknown engine {other:?}"))),
        }
        match coverage
            .iter_mut()
            .find(|(f, m, c, ..)| *f == family && *m == n && *c == conn)
        {
            Some((.., oracle_seen, prop_seen)) => {
                if engine == "oracle-bfs" {
                    *oracle_seen = true;
                } else {
                    *prop_seen = true;
                }
            }
            None => coverage.push((
                family,
                n,
                conn,
                engine == "oracle-bfs",
                engine != "oracle-bfs",
            )),
        }
    }
    // Host coverage: each connectivity needs ≥ 3 families × ≥ 3 sizes of
    // points with both engines, and every adversarial family among them.
    for want in [4u64, 8] {
        let full_points: Vec<_> = coverage
            .iter()
            .filter(|(_, _, c, oracle, prop)| *c == want && *oracle && *prop)
            .collect();
        let mut fams: Vec<&str> = full_points.iter().map(|(f, ..)| f.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        let mut ns: Vec<u64> = full_points.iter().map(|(_, n, ..)| *n).collect();
        ns.sort_unstable();
        ns.dedup();
        if fams.len() < 3 || ns.len() < 3 {
            return Err(format!(
                "coverage too thin at {want}-connectivity: {} families × {} sizes \
                 with both engines (need ≥ 3 × ≥ 3)",
                fams.len(),
                ns.len()
            ));
        }
        for adv in ADVERSARIAL_FAMILIES {
            if !fams.contains(adv) {
                return Err(format!(
                    "adversarial family {adv:?} is not covered at {want}-connectivity"
                ));
            }
        }
    }
    // Lock-step section: both kernels on identical inputs, both
    // connectivities, matching labels, sane counters.
    let lockstep = get("lockstep")?
        .as_array()
        .ok_or("lockstep is not an array")?;
    if lockstep.is_empty() {
        return Err("lockstep is empty".to_string());
    }
    let mut ls_conns: Vec<u64> = Vec::new();
    for (i, e) in lockstep.iter().enumerate() {
        let ctx = |msg: &str| format!("lockstep entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let num = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_u64())
                .ok_or_else(|| ctx(&format!("missing integer {key:?}")))
        };
        let conn = num("conn")?;
        if conn != 4 && conn != 8 {
            return Err(ctx("conn is not 4 or 8"));
        }
        ls_conns.push(conn);
        let pipeline = num("pipeline_rounds")?;
        let rounds = num("propagate_rounds")?;
        let ticks = num("propagate_ticks")?;
        let iterations = num("propagate_iterations")?;
        if pipeline == 0 {
            return Err(ctx("pipeline_rounds must be at least 1"));
        }
        if iterations == 0 {
            return Err(ctx("propagate_iterations must be at least 1"));
        }
        if rounds < iterations {
            return Err(ctx("propagate_rounds is below propagate_iterations"));
        }
        if ticks < rounds {
            return Err(ctx("propagate_ticks is below propagate_rounds"));
        }
        let ok = eo
            .iter()
            .find(|(k, _)| k == "labels_match")
            .and_then(|(_, v)| v.as_bool())
            .ok_or_else(|| ctx("missing labels_match"))?;
        if !ok {
            return Err(ctx("the two kernels disagreed on the labeling"));
        }
    }
    for want in [4u64, 8] {
        if !ls_conns.contains(&want) {
            return Err(format!("no lockstep comparison at {want}-connectivity"));
        }
    }
    if require_full {
        for want in [4u64, 8] {
            let best_of = |engine: &str| {
                entries.iter().find_map(|e| {
                    let eo = e.as_object()?;
                    let s = |k: &str| eo.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                    (s("family")?.as_str()? == "random50"
                        && s("n")?.as_u64()? == 2048
                        && s("conn")?.as_u64()? == want
                        && s("engine")?.as_str()? == engine)
                        .then(|| s("best_ns")?.as_u64())
                        .flatten()
                })
            };
            let oracle = best_of("oracle-bfs")
                .ok_or_else(|| format!("no oracle entry for random50 @ 2048 ({want}-conn)"))?;
            let prop = best_of("propagate")
                .ok_or_else(|| format!("no propagate entry for random50 @ 2048 ({want}-conn)"))?;
            let ratio = oracle as f64 / prop.max(1) as f64;
            if ratio < REQUIRED_SPEEDUP {
                return Err(format!(
                    "propagate is only {ratio:.2}× the oracle on random50 @ 2048 \
                     ({want}-conn; need ≥ {REQUIRED_SPEEDUP}×)"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PropagateReport {
        let mut entries = Vec::new();
        for family in ["random50", "spiral", "serpentine", "hilbert"] {
            for n in [512usize, 1024, 2048] {
                for conn in [4u32, 8] {
                    entries.push(Entry {
                        family: family.to_string(),
                        n,
                        conn,
                        engine: "oracle-bfs".to_string(),
                        best_ns: 9000,
                        mean_ns: 9500,
                        reps: 3,
                        bit_identical: None,
                        iterations: None,
                        reduction_passes: None,
                    });
                    entries.push(Entry {
                        family: family.to_string(),
                        n,
                        conn,
                        engine: "propagate".to_string(),
                        best_ns: 3000, // 3× the oracle
                        mean_ns: 3300,
                        reps: 3,
                        bit_identical: Some(true),
                        iterations: Some(4),
                        reduction_passes: Some(2),
                    });
                }
            }
        }
        let lockstep = [4u32, 8]
            .iter()
            .map(|&conn| LockstepEntry {
                family: "random50".to_string(),
                n: 32,
                conn,
                pipeline_rounds: 400,
                propagate_rounds: 2600,
                propagate_ticks: 80_000,
                propagate_iterations: 9,
                labels_match: true,
            })
            .collect();
        PropagateReport {
            scale: "full".to_string(),
            families: ["random50", "spiral", "serpentine", "hilbert"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            sides: vec![512, 1024, 2048],
            entries,
            lockstep,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report().to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report().to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_rejects_non_identical_labels() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "propagate" {
                e.bit_identical = Some(false);
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn validation_requires_convergence_counters() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "propagate" {
                e.iterations = None;
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("iterations"), "{err}");
    }

    #[test]
    fn validation_requires_the_adversarial_families() {
        let mut report = tiny_report();
        report.entries.retain(|e| e.family != "hilbert");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("hilbert"), "{err}");
    }

    #[test]
    fn validation_requires_lockstep_coverage_of_both_conns() {
        let mut report = tiny_report();
        report.lockstep.retain(|e| e.conn != 8);
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("8-connectivity"), "{err}");
    }

    #[test]
    fn validation_rejects_disagreeing_lockstep_kernels() {
        let mut report = tiny_report();
        report.lockstep[0].labels_match = false;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("disagreed"), "{err}");
    }

    #[test]
    fn full_validation_enforces_the_headline_speedup() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "propagate" {
                e.best_ns = 9000; // no speedup
                e.mean_ns = 9500;
            }
        }
        let text = report.to_json();
        validate(&text, false).expect("quick validation ignores the ratio");
        let err = validate(&text, true).unwrap_err();
        assert!(err.contains("2×") || err.contains("need ≥ 2"), "{err}");
    }

    #[test]
    fn validation_rejects_thin_coverage() {
        let mut report = tiny_report();
        report
            .entries
            .retain(|e| e.family == "random50" || e.family == "spiral");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        let report = run_propagate(true, |_| {});
        validate(&report.to_json(), false).expect("fresh quick sweep validates");
    }
}
