//! `slap-bench` — wall-clock perf baselines for the SLAP reproduction.
//!
//! ```text
//! slap-bench baseline                    # full sweep -> BENCH_baseline.json
//! slap-bench baseline --quick --out F    # small sweep (CI smoke), custom path
//! slap-bench check FILE                  # schema-validate a baseline file
//! slap-bench check FILE --require-full   # + full scale and the 3x criterion
//! ```
//!
//! The criterion microbenches remain under `cargo bench`; this binary records
//! the end-to-end trajectory points (oracle vs. fast engine vs. simulated
//! Algorithm CC) that `BENCH_baseline.json` commits to the repository.

use slap_bench::baseline;

fn usage() -> ! {
    eprintln!(
        "usage: slap-bench baseline [--quick] [--out PATH]\n       slap-bench check PATH [--require-full]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("baseline") => {
            let mut quick = false;
            let mut out = "BENCH_baseline.json".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" | "-q" => quick = true,
                    "--out" | "-o" => match it.next() {
                        Some(path) => out = path.clone(),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let report = baseline::run_baseline(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            baseline::validate(&text, !quick).unwrap_or_else(|e| {
                eprintln!("generated baseline failed its own validation: {e}");
                std::process::exit(1);
            });
            std::fs::write(&out, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {out} ({} entries)", report.entries.len());
        }
        Some("check") => {
            let mut path: Option<&str> = None;
            let mut require_full = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--require-full" => require_full = true,
                    p if path.is_none() => path = Some(p),
                    _ => usage(),
                }
            }
            let Some(path) = path else { usage() };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            match baseline::validate(&text, require_full) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
