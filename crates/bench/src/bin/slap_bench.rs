//! `slap-bench` — wall-clock perf baselines for the SLAP reproduction.
//!
//! ```text
//! slap-bench baseline                    # full sweep -> BENCH_baseline.json
//! slap-bench baseline --quick --out F    # small sweep (CI smoke), custom path
//! slap-bench parallel                    # thread sweep -> BENCH_parallel.json
//! slap-bench parallel --quick --out F    # small sweep (CI smoke), custom path
//! slap-bench stream                      # streaming sweep -> BENCH_stream.json
//! slap-bench stream --quick --out F      # small sweep (CI smoke), custom path
//! slap-bench reuse                       # cold-vs-warm sweep over the engine
//!                                        #   registry -> BENCH_reuse.json
//! slap-bench reuse --quick --out F       # small sweep (CI smoke), custom path
//! slap-bench tiled                       # tile-shape + out-of-core sweep
//!                                        #   -> BENCH_tiled.json
//! slap-bench tiled --quick --out F       # small sweep (CI smoke), custom path
//! slap-bench serve                       # slapd sustained jobs/sec at
//!                                        #   1/4/16 concurrent clients
//!                                        #   -> BENCH_serve.json
//! slap-bench serve --quick --out F       # small sweep (CI smoke), custom path
//! slap-bench propagate                   # label-equivalence engine vs oracle
//!                                        #   + lock-step pipeline-vs-iteration
//!                                        #   step counts -> BENCH_propagate.json
//! slap-bench propagate --quick --out F   # small sweep (CI smoke), custom path
//! slap-bench check FILE                  # schema-validate a recorded file
//! slap-bench check FILE --require-full   # + full scale and the headline criteria
//! ```
//!
//! The criterion microbenches remain under `cargo bench`; this binary records
//! the end-to-end trajectory points — oracle vs. fast engine vs. simulated
//! Algorithm CC (`baseline`, both connectivities), sequential vs.
//! strip-parallel engine across thread counts (`parallel`), the
//! bounded-memory streaming engine with its frontier peaks (`stream`), and
//! cold-call vs. warm-session throughput for every engine in
//! `slap_cc::engine::registry()` (`reuse`), the 2-D tiled engine across
//! tile shapes plus the out-of-core band scheduler (`tiled`), and the
//! iterative label-equivalence engine vs. the oracle plus the lock-step
//! pipeline-vs-iteration step-count comparison (`propagate`) — that the
//! `BENCH_*.json` files
//! commit to the repository. `check` dispatches on the file's `schema`
//! field.

use slap_bench::{baseline, json, parallel, propagate, reuse, serve, stream, tiled};

fn usage() -> ! {
    eprintln!(
        "usage: slap-bench baseline [--quick] [--out PATH]\n       \
         slap-bench parallel [--quick] [--out PATH]\n       \
         slap-bench stream [--quick] [--out PATH]\n       \
         slap-bench reuse [--quick] [--out PATH]\n       \
         slap-bench tiled [--quick] [--out PATH]\n       \
         slap-bench serve [--quick] [--out PATH]\n       \
         slap-bench propagate [--quick] [--out PATH]\n       \
         slap-bench check PATH [--require-full]"
    );
    std::process::exit(2);
}

/// Parses the shared `--quick` / `--out` flags of the sweep subcommands.
fn sweep_flags(args: &[String], default_out: &str) -> (bool, String) {
    let mut quick = false;
    let mut out = default_out.to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => quick = true,
            "--out" | "-o" => match it.next() {
                Some(path) => out = path.clone(),
                None => usage(),
            },
            _ => usage(),
        }
    }
    (quick, out)
}

/// Validates `text` (against its own validator), writes it to `out`.
fn write_validated(
    text: &str,
    out: &str,
    entries: usize,
    validate: impl Fn(&str) -> Result<(), String>,
) {
    validate(text).unwrap_or_else(|e| {
        eprintln!("generated sweep failed its own validation: {e}");
        std::process::exit(1);
    });
    std::fs::write(out, text).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out} ({entries} entries)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("baseline") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_baseline.json");
            let report = baseline::run_baseline(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                baseline::validate(t, !quick)
            });
        }
        Some("parallel") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_parallel.json");
            let report = parallel::run_parallel(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                parallel::validate(t, !quick)
            });
        }
        Some("stream") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_stream.json");
            let report = stream::run_stream(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                stream::validate(t, !quick)
            });
        }
        Some("reuse") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_reuse.json");
            let report = reuse::run_reuse(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                reuse::validate(t, !quick)
            });
        }
        Some("tiled") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_tiled.json");
            let report = tiled::run_tiled(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                tiled::validate(t, !quick)
            });
        }
        Some("serve") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_serve.json");
            let report = serve::run_serve(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                serve::validate(t, !quick)
            });
        }
        Some("propagate") => {
            let (quick, out) = sweep_flags(&args[1..], "BENCH_propagate.json");
            let report = propagate::run_propagate(quick, |line| eprintln!("  {line}"));
            let text = report.to_json();
            write_validated(&text, &out, report.entries.len(), |t| {
                propagate::validate(t, !quick)
            });
        }
        Some("check") => {
            let mut path: Option<&str> = None;
            let mut require_full = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--require-full" => require_full = true,
                    p if path.is_none() => path = Some(p),
                    _ => usage(),
                }
            }
            let Some(path) = path else { usage() };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            // Dispatch on the recorded schema id.
            let schema = json::parse(&text)
                .ok()
                .and_then(|doc| {
                    doc.as_object()?
                        .iter()
                        .find(|(k, _)| k == "schema")
                        .and_then(|(_, v)| v.as_str().map(str::to_string))
                })
                .unwrap_or_default();
            let result = match schema.as_str() {
                parallel::SCHEMA => parallel::validate(&text, require_full),
                stream::SCHEMA => stream::validate(&text, require_full),
                tiled::SCHEMA => tiled::validate(&text, require_full),
                reuse::SCHEMA => reuse::validate(&text, require_full),
                serve::SCHEMA => serve::validate(&text, require_full),
                propagate::SCHEMA => propagate::validate(&text, require_full),
                _ => baseline::validate(&text, require_full),
            };
            match result {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
