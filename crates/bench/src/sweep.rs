//! The shared sweep harness: one family × size × connectivity driver and
//! one timing protocol for every `slap-bench` recorder.
//!
//! The baseline, parallel, tiled, reuse, and propagate sweeps all walk the
//! same grid — deterministic workload families at a ladder of sizes, both
//! adjacency conventions, repetitions scaled to the image — and differ only
//! in what they time at each point. [`drive`] owns the walk (and the
//! workload generation and rep policy); recorders own just their per-point
//! closure. Keeping the protocol in one place means every committed
//! `BENCH_*.json` is comparable: same seed, same generator calls, same
//! best/mean-of-N discipline.

use slap_image::{gen, Bitmap, Connectivity};
use std::time::Instant;

/// Seed for the random workload families (shared by every sweep).
pub const SEED: u64 = 1;

/// Connectivities swept (the JSON records them as `4` / `8`).
pub const CONNS: &[Connectivity] = &[Connectivity::Four, Connectivity::Eight];

/// The JSON id (`4` / `8`) of a connectivity.
pub fn conn_id(conn: Connectivity) -> u32 {
    match conn {
        Connectivity::Four => 4,
        Connectivity::Eight => 8,
    }
}

/// Repetitions per point, scaled down for the big images.
pub fn reps_for(n: usize, quick: bool) -> usize {
    match (quick, n) {
        (true, _) => 3,
        (false, 2048..) => 3,
        (false, 1024..) => 4,
        _ => 6,
    }
}

/// Times `f` over `reps` repetitions (after one warm-up), returning
/// `(best_ns, mean_ns)`.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> (u64, u64) {
    f(); // warm-up
    let mut best = u64::MAX;
    let mut total = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as u64;
        best = best.min(ns);
        total += ns;
    }
    (best, total / reps as u64)
}

/// One stop of the sweep walk: a generated workload at one size under one
/// adjacency convention, with the rep budget the protocol assigns it.
pub struct Point<'a> {
    /// Workload family name (a `gen::by_name` key).
    pub family: &'a str,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention.
    pub conn: Connectivity,
    /// The JSON id of `conn` (`4` / `8`).
    pub cid: u32,
    /// The generated image (one generation per `(family, n)`, shared by
    /// both connectivities).
    pub img: &'a Bitmap,
    /// Timed repetitions the protocol assigns this size.
    pub reps: usize,
}

/// Walks `families × sides × CONNS`, generating each workload once per
/// `(family, n)` with [`SEED`], and invokes `f` at every point.
///
/// # Panics
/// Panics on an unknown family name.
pub fn drive(families: &[&str], sides: &[usize], quick: bool, mut f: impl FnMut(&Point)) {
    for &family in families {
        for &n in sides {
            let img = gen::by_name(family, n, SEED)
                .unwrap_or_else(|| panic!("unknown workload family {family:?}"));
            let reps = reps_for(n, quick);
            for &conn in CONNS {
                f(&Point {
                    family,
                    n,
                    conn,
                    cid: conn_id(conn),
                    img: &img,
                    reps,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_visits_every_point_in_order() {
        let mut seen = Vec::new();
        drive(&["random50", "empty"], &[8, 16], true, |p| {
            assert_eq!(p.img.rows(), p.n);
            assert_eq!(p.img.cols(), p.n);
            assert_eq!(p.reps, reps_for(p.n, true));
            seen.push((p.family.to_string(), p.n, p.cid));
        });
        let expect: Vec<(String, usize, u32)> = ["random50", "empty"]
            .iter()
            .flat_map(|f| {
                [8usize, 16]
                    .iter()
                    .flat_map(move |&n| [4u32, 8].iter().map(move |&c| (f.to_string(), n, c)))
            })
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn one_generation_per_family_and_size() {
        // Both connectivity stops at one (family, n) must hand out the same
        // image object state (same pixels, deterministic seed).
        let mut last: Option<(usize, u64)> = None;
        drive(&["random50"], &[32], true, |p| {
            let ones = p.img.count_ones() as u64;
            if let Some((n, prev)) = last {
                assert_eq!(n, p.n);
                assert_eq!(prev, ones, "same generated frame for both conns");
            }
            last = Some((p.n, ones));
        });
    }
}
