//! `experiments` — regenerates the paper-claim tables recorded in
//! EXPERIMENTS.md.
//!
//! ```text
//! experiments all            # every experiment at full scale
//! experiments e3 e5          # selected experiments
//! experiments --quick all    # small sweeps (seconds, for smoke testing)
//! experiments --list         # experiment ids and what they reproduce
//! ```

use slap_bench::{experiments, Scale};

const DESCRIPTIONS: &[(&str, &str)] = &[
    ("e1", "Lemma 1/2: O(n) with unit-cost union-find"),
    ("e2", "Theorem 3: Blum k-UF trees, O(n·lg n/lg lg n)"),
    ("e3", "S3: Tarjan UF near-linear typical / O(n lg n) worst"),
    ("e4", "Fig. 3: naive label passing vs Algorithm CC"),
    ("e5", "Intro: divide&conquer SLAP baseline (Theta(n lg n))"),
    ("e6", "Intro: mesh (n^2 PEs) resource comparison"),
    ("e7", "Corollary 4: component folds of initial labels"),
    ("e8", "Theorem 5: 1-bit links need Omega(n lg n)"),
    ("e9", "S3 variants: idle compression, eager forwarding"),
    ("e10", "S3/[21]: union-find implementation family"),
    ("e11", "ours: threaded lock-step executor scaling"),
    (
        "e12",
        "S3: interval structure of the phase-2 union sequence",
    ),
    ("e13", "ours: run-length vs per-pixel pass ablation"),
    ("e14", "ours: 8-connectivity extension cost parity"),
    (
        "e15",
        "Intro: hypercube (n^2 PEs, polylog time) resource comparison",
    ),
    (
        "e16",
        "S3: speculative forwarding with quashing (lock-step)",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--list" | "-l" => {
                for (id, desc) in DESCRIPTIONS {
                    println!("{id:5} {desc}");
                }
                return;
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick] (all | e1 .. e11)+");
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: experiments [--quick] (all | e1 .. e11)+  (see --list)");
        std::process::exit(2);
    }
    for name in &names {
        match experiments::by_name(name, scale) {
            Some(tables) => {
                for t in tables {
                    print!("{}", t.to_markdown());
                }
            }
            None => {
                eprintln!("unknown experiment {name:?}; see --list");
                std::process::exit(2);
            }
        }
    }
}
