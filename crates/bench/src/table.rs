//! Minimal markdown table rendering for the experiment harness.

/// A titled markdown table with optional footnotes.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (rendered as a heading).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified by the producer).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row; must match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavored markdown with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["n", "steps"]);
        t.push_row(vec!["64".into(), "1234".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("|  n | steps |"));
        assert!(md.contains("| 64 |  1234 |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
