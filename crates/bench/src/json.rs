//! A minimal JSON reader/writer for the baseline schema.
//!
//! The workspace's `serde` is an offline no-op stub, so the baseline file is
//! written by hand ([`crate::baseline::BaselineReport::to_json`]) and read
//! back by this small recursive-descent parser — just enough JSON (objects,
//! arrays, strings with the common escapes, numbers, booleans, null) for
//! `slap-bench check` to validate the schema without any dependency.

/// A parsed JSON value. Numbers keep their `f64` value; [`Json::as_u64`]
/// reports integers only when exactly representable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number literal.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Quotes a string as a JSON literal (escaping the characters the baseline
/// writer can produce).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document (rejecting trailing non-whitespace).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are not needed by this schema.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-read as UTF-8 from this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("parse");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_u64(), None, "negative is not u64");
        let inner = obj[1].1.as_object().unwrap();
        assert_eq!(inner[0].1.as_bool(), Some(true));
        assert_eq!(inner[1].1, Json::Null);
        assert_eq!(obj[2].1.as_str(), Some("x\ny"));
    }

    #[test]
    fn quote_escapes_roundtrip() {
        for s in ["plain", "with \"quotes\"", "line\nbreak", "back\\slash"] {
            let parsed = parse(&quote(s)).expect("parse quoted");
            assert_eq!(parsed.as_str(), Some(s), "roundtrip of {s:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
