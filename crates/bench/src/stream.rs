//! The `slap-bench stream` sweep: the bounded-memory streaming engine's
//! wall-clock trajectory and frontier peaks, serialized to
//! `BENCH_stream.json`.
//!
//! For each (family, size, connectivity) point the sweep replays the image
//! row by row through a fresh [`StreamLabeler`] and records best/mean
//! wall-clock, rows per second, and the observed memory peaks
//! (`peak_frontier_runs`, `peak_nodes`). Before timing, the retired feature
//! multiset is checked against the whole-frame reference
//! ([`slap_cc::features::component_features`] over
//! [`slap_image::fast_labels_conn`] labels) and the result travels with the
//! file as `feature_equivalent`; [`validate`] rejects any file where a point
//! was not equivalent **or** where a peak exceeds the `O(cols)` frontier
//! bound — the schema itself enforces the engine's memory contract.

use crate::json;
use crate::sweep::{self, SEED};
use slap_cc::features::{component_features, streamed_features};
use slap_image::{fast_labels_conn, stream::StreamLabeler, Bitmap, Connectivity};
use std::fmt::Write as _;

/// Schema identifier stamped into (and required from) every stream file.
pub const SCHEMA: &str = "slap-bench-stream/v1";

/// One timed (family, size, connectivity) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// Best wall-clock nanoseconds over the repetitions.
    pub best_ns: u64,
    /// Mean wall-clock nanoseconds over the repetitions.
    pub mean_ns: u64,
    /// Number of timed repetitions.
    pub reps: usize,
    /// Rows ingested per second at the best repetition.
    pub rows_per_s: u64,
    /// Maximum frontier size observed (runs of one row).
    pub peak_frontier_runs: usize,
    /// Maximum live union–find slab occupancy observed.
    pub peak_nodes: usize,
    /// The retired feature multiset matched the whole-frame reference.
    pub feature_equivalent: bool,
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All timed points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale.
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "checker"];
    if quick {
        (FAMILIES, &[64, 128, 256])
    } else {
        (FAMILIES, &[256, 512, 1024, 2048])
    }
}

/// One full streaming pass over `img` through a **warm session**: the
/// labeler is rewound ([`StreamLabeler::reset`]) instead of reconstructed,
/// so repeated passes reuse every arena — the same steady state the engine
/// layer's sessions guarantee (cold-vs-warm deltas are what `slap-bench
/// reuse` records).
fn stream_once(labeler: &mut StreamLabeler, img: &Bitmap, conn: Connectivity) {
    labeler.reset(img.cols(), conn);
    for r in 0..img.rows() {
        labeler.push_row(img.row_words(r));
    }
    labeler.finish();
}

/// Runs the sweep. `progress` receives one line per timed point.
pub fn run_stream(quick: bool, mut progress: impl FnMut(&str)) -> StreamReport {
    let (families, sides) = sweep_params(quick);
    let mut entries = Vec::new();
    sweep::drive(families, sides, quick, |p| {
        let (family, n, conn, cid, img, reps) = (p.family, p.n, p.conn, p.cid, p.img, p.reps);
        // Untimed pass: memory peaks + feature equivalence against
        // the whole-frame engine (exercising the core's retirement
        // hook end to end).
        let mut labeler = StreamLabeler::new(img.cols(), conn);
        let stats = {
            stream_once(&mut labeler, img, conn);
            labeler.drain_retired();
            labeler.stats()
        };
        let reference = component_features(img, &fast_labels_conn(img, conn), conn);
        let equivalent = streamed_features(img, conn) == reference.per_component;
        let (best, mean) = sweep::time_reps(reps, || {
            stream_once(&mut labeler, std::hint::black_box(img), conn);
            std::hint::black_box(labeler.drain_retired().count());
        });
        progress(&format!(
            "{family}/{n}/{cid}-conn stream: {:.3} ms, frontier peak {}",
            best as f64 / 1e6,
            stats.peak_frontier_runs
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            best_ns: best,
            mean_ns: mean,
            reps,
            rows_per_s: ((n as u128 * 1_000_000_000) / best.max(1) as u128) as u64,
            peak_frontier_runs: stats.peak_frontier_runs,
            peak_nodes: stats.peak_nodes,
            feature_equivalent: equivalent,
        });
    });
    StreamReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl StreamReport {
    /// Serializes the report. Hand-rolled (the workspace `serde` is a no-op
    /// stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"best_ns\": {}, \
                 \"mean_ns\": {}, \"reps\": {}, \"rows_per_s\": {}, \
                 \"peak_frontier_runs\": {}, \"peak_nodes\": {}, \"feature_equivalent\": {}}}",
                json::quote(&e.family),
                e.n,
                e.conn,
                e.best_ns,
                e.mean_ns,
                e.reps,
                e.rows_per_s,
                e.peak_frontier_runs,
                e.peak_nodes,
                e.feature_equivalent
            );
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Validates a stream-sweep JSON document against the schema. Every entry
/// must have been feature-equivalent to the whole-frame reference and must
/// respect the frontier memory bound (`peak_frontier_runs ≤ n/2 + 1`,
/// `peak_nodes ≤ n + 1` for an `n × n` image). With `require_full` the file
/// must also record a full-scale sweep.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale stream sweep is required".to_string());
    }
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // (family, n, conn) coverage while the per-entry shape is checked.
    let mut coverage: Vec<(String, u64, u64)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let best = field("best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("best_ns is not a positive integer"))?;
        let mean = field("mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("mean_ns is not an integer"))?;
        if mean < best {
            return Err(ctx("mean_ns is below best_ns"));
        }
        field("reps")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("reps is not a positive integer"))?;
        field("rows_per_s")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("rows_per_s is not a positive integer"))?;
        let frontier = field("peak_frontier_runs")?
            .as_u64()
            .ok_or_else(|| ctx("peak_frontier_runs is not an integer"))?;
        let nodes = field("peak_nodes")?
            .as_u64()
            .ok_or_else(|| ctx("peak_nodes is not an integer"))?;
        if frontier > n / 2 + 1 {
            return Err(ctx(&format!(
                "peak_frontier_runs {frontier} violates the O(cols) bound for n = {n}"
            )));
        }
        if nodes > n + 1 {
            return Err(ctx(&format!(
                "peak_nodes {nodes} violates the O(cols + live) bound for n = {n}"
            )));
        }
        let equivalent = field("feature_equivalent")?
            .as_bool()
            .ok_or_else(|| ctx("feature_equivalent is not a boolean"))?;
        if !equivalent {
            return Err(ctx(
                "retired features were not equivalent to the whole-frame reference",
            ));
        }
        if !coverage.iter().any(|c| *c == (family.clone(), n, conn)) {
            coverage.push((family, n, conn));
        }
    }
    // Coverage: each connectivity needs ≥ 2 families × ≥ 3 sizes.
    for want in [4u64, 8] {
        let points: Vec<_> = coverage.iter().filter(|(_, _, c)| *c == want).collect();
        let mut fams: Vec<&str> = points.iter().map(|(f, ..)| f.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        let mut ns: Vec<u64> = points.iter().map(|(_, n, _)| *n).collect();
        ns.sort_unstable();
        ns.dedup();
        if fams.len() < 2 || ns.len() < 3 {
            return Err(format!(
                "coverage too thin at {want}-connectivity: {} families × {} sizes \
                 (need ≥ 2 × ≥ 3)",
                fams.len(),
                ns.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> StreamReport {
        let mut entries = Vec::new();
        for family in ["random50", "blobs"] {
            for n in [256usize, 512, 1024] {
                for conn in [4u32, 8] {
                    entries.push(Entry {
                        family: family.to_string(),
                        n,
                        conn,
                        best_ns: 5000,
                        mean_ns: 5600,
                        reps: 3,
                        rows_per_s: 1_000_000,
                        peak_frontier_runs: n / 2,
                        peak_nodes: n,
                        feature_equivalent: true,
                    });
                }
            }
        }
        StreamReport {
            scale: "full".to_string(),
            families: vec!["random50".to_string(), "blobs".to_string()],
            sides: vec![256, 512, 1024],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report().to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report().to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_rejects_non_equivalent_features() {
        let mut report = tiny_report();
        report.entries[0].feature_equivalent = false;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("equivalent"), "{err}");
    }

    #[test]
    fn validation_enforces_the_memory_bound() {
        let mut report = tiny_report();
        report.entries[0].peak_frontier_runs = report.entries[0].n; // > n/2 + 1
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("O(cols)"), "{err}");
        let mut report = tiny_report();
        report.entries[0].peak_nodes = 2 * report.entries[0].n;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("O(cols + live)"), "{err}");
    }

    #[test]
    fn validation_rejects_thin_coverage() {
        let mut report = tiny_report();
        report.entries.retain(|e| e.family == "random50");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        let report = run_stream(true, |_| {});
        validate(&report.to_json(), false).expect("fresh quick sweep validates");
        assert!(report.entries.iter().all(|e| e.feature_equivalent));
    }
}
