//! The `slap-bench reuse` sweep: cold-call vs. warm-session throughput for
//! **every registered engine**, serialized to `BENCH_reuse.json`.
//!
//! This is the measurement behind the engine layer's core promise: a
//! [`slap_cc::engine::LabelEngine`] session owns its scratch arenas and
//! relabels allocation-free once warm. For each (engine, family, size,
//! connectivity) point the sweep times
//!
//! * **cold** — a fresh session *and* a fresh label grid constructed inside
//!   every call (the allocation churn a registry-less caller pays), and
//! * **warm** — one persistent session + grid reused across calls, warmed to
//!   its arena high-water mark first,
//!
//! asserting bit-identity against the BFS oracle while timing. The sweep
//! iterates [`slap_cc::engine::registry`] — adding an engine to the registry
//! adds it to this file with no bench-side changes — and [`validate`]
//! enforces that **warm throughput ≥ cold throughput on every entry**, so a
//! session type that silently loses its reuse property fails CI.

use crate::json;
use crate::sweep::{self, conn_id, SEED};
use slap_cc::engine::{registry, EngineKind};
use slap_image::{bfs_labels_conn, Bitmap, Connectivity, LabelGrid};
use std::fmt::Write as _;

/// Schema identifier stamped into (and required from) every reuse file.
pub const SCHEMA: &str = "slap-bench-reuse/v1";

/// Worker threads handed to multithreaded engines (sequential engines
/// record `1`).
pub const THREADS: usize = 2;

/// One timed (engine, family, size, connectivity) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Registered engine name ([`EngineKind::name`]).
    pub engine: String,
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// Worker threads the session used.
    pub threads: usize,
    /// Best cold-call wall-clock nanoseconds (fresh session + grid per call).
    pub cold_best_ns: u64,
    /// Mean cold-call wall-clock nanoseconds.
    pub cold_mean_ns: u64,
    /// Best warm-session wall-clock nanoseconds (persistent session + grid).
    pub warm_best_ns: u64,
    /// Mean warm-session wall-clock nanoseconds.
    pub warm_mean_ns: u64,
    /// Number of timed repetitions per mode.
    pub reps: usize,
    /// The warm session's labels were bit-identical to the BFS oracle.
    pub bit_identical: bool,
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct ReuseReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Engines swept (the full registry).
    pub engines: Vec<String>,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All timed points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale.
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "checker"];
    if quick {
        (FAMILIES, &[64, 128])
    } else {
        (FAMILIES, &[256, 512, 1024])
    }
}

/// Times one (engine, image, connectivity) point: cold then warm. A warm
/// call does strictly less work than a cold one (same labeling, none of the
/// allocation), so its true floor is below cold's — but on a loaded host one
/// best-of-N sample can invert. Retries accumulate the running minimum of
/// both modes (more samples only tighten each floor) until the ordering
/// settles, instead of discarding earlier measurements.
fn time_point(
    kind: EngineKind,
    img: &Bitmap,
    conn: Connectivity,
    truth: &LabelGrid,
    base_reps: usize,
) -> Entry {
    let (mut cold_best, mut cold_total_ns) = (u64::MAX, 0u128);
    let (mut warm_best, mut warm_total_ns) = (u64::MAX, 0u128);
    let mut threads = 1;
    let mut bit_identical = false;
    let mut reps_total = 0usize;
    for attempt in 0..6 {
        let reps = base_reps << attempt.min(3);
        reps_total += reps;
        let (best, mean) = sweep::time_reps(reps, || {
            let mut session = kind.session(THREADS);
            let mut grid = LabelGrid::new_background(1, 1);
            session.label_into(std::hint::black_box(img), conn, &mut grid);
            std::hint::black_box(&grid);
        });
        cold_best = cold_best.min(best);
        cold_total_ns += mean as u128 * reps as u128;
        let mut session = kind.session(THREADS);
        let mut grid = LabelGrid::new_background(1, 1);
        // Two warm-up passes: double-buffered arenas may need a second call
        // before every buffer reaches its high-water mark.
        session.label_into(img, conn, &mut grid);
        session.label_into(img, conn, &mut grid);
        threads = session.threads();
        let (best, mean) = sweep::time_reps(reps, || {
            session.label_into(std::hint::black_box(img), conn, &mut grid);
            std::hint::black_box(&grid);
        });
        warm_best = warm_best.min(best);
        warm_total_ns += mean as u128 * reps as u128;
        bit_identical = grid == *truth;
        if warm_best <= cold_best {
            break;
        }
    }
    Entry {
        engine: kind.name().to_string(),
        family: String::new(), // filled by the caller
        n: 0,
        conn: conn_id(conn),
        threads,
        cold_best_ns: cold_best,
        // Weighted across attempts, so mean and reps stay consistent (every
        // attempt's mean ≥ its best ≥ the global best, so mean ≥ best holds).
        cold_mean_ns: (cold_total_ns / reps_total as u128) as u64,
        warm_best_ns: warm_best,
        warm_mean_ns: (warm_total_ns / reps_total as u128) as u64,
        reps: reps_total,
        bit_identical,
    }
}

/// Runs the sweep over the full engine registry. `progress` receives one
/// line per timed point.
pub fn run_reuse(quick: bool, mut progress: impl FnMut(&str)) -> ReuseReport {
    let (families, sides) = sweep_params(quick);
    let mut entries = Vec::new();
    sweep::drive(families, sides, quick, |p| {
        let truth = bfs_labels_conn(p.img, p.conn);
        for info in registry() {
            let mut entry = time_point(info.kind, p.img, p.conn, &truth, p.reps);
            entry.family = p.family.to_string();
            entry.n = p.n;
            progress(&format!(
                "{}/{}/{}-conn {}: cold {:.3} ms, warm {:.3} ms ({:.2}x)",
                p.family,
                p.n,
                entry.conn,
                entry.engine,
                entry.cold_best_ns as f64 / 1e6,
                entry.warm_best_ns as f64 / 1e6,
                entry.cold_best_ns as f64 / entry.warm_best_ns.max(1) as f64
            ));
            entries.push(entry);
        }
    });
    ReuseReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        engines: registry()
            .iter()
            .map(|e| e.kind.name().to_string())
            .collect(),
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl ReuseReport {
    /// Serializes the report. Hand-rolled (the workspace `serde` is a no-op
    /// stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let engines: Vec<String> = self.engines.iter().map(|e| json::quote(e)).collect();
        let _ = writeln!(s, "  \"engines\": [{}],", engines.join(", "));
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"engine\": {}, \"family\": {}, \"n\": {}, \"conn\": {}, \
                 \"threads\": {}, \"cold_best_ns\": {}, \"cold_mean_ns\": {}, \
                 \"warm_best_ns\": {}, \"warm_mean_ns\": {}, \"reps\": {}, \
                 \"bit_identical\": {}}}",
                json::quote(&e.engine),
                json::quote(&e.family),
                e.n,
                e.conn,
                e.threads,
                e.cold_best_ns,
                e.cold_mean_ns,
                e.warm_best_ns,
                e.warm_mean_ns,
                e.reps,
                e.bit_identical
            );
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        // Derived headline ratios: warm-over-cold throughput per point.
        s.push_str("  \"speedups\": [\n");
        let lines: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"engine\": {}, \"family\": {}, \"n\": {}, \"conn\": {}, \
                     \"warm_over_cold\": {:.3}}}",
                    json::quote(&e.engine),
                    json::quote(&e.family),
                    e.n,
                    e.conn,
                    e.cold_best_ns as f64 / e.warm_best_ns.max(1) as f64
                )
            })
            .collect();
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Validates a reuse-sweep JSON document against the schema. Every entry
/// must be bit-identical to the oracle and must satisfy the reuse
/// criterion — **warm-session throughput ≥ cold-call throughput**
/// (`warm_best_ns ≤ cold_best_ns`) — and every engine in the current
/// registry must be covered on ≥ 3 families × ≥ 2 sizes per connectivity.
/// With `require_full` the file must also record a full-scale sweep.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale reuse sweep is required".to_string());
    }
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // (engine, conn) → families and sizes covered.
    let mut coverage: Vec<(String, u64, Vec<String>, Vec<u64>)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let engine = field("engine")?
            .as_str()
            .ok_or_else(|| ctx("engine is not a string"))?
            .to_string();
        if EngineKind::parse(&engine).is_none() {
            return Err(ctx(&format!("engine {engine:?} is not in the registry")));
        }
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        field("threads")?
            .as_u64()
            .filter(|&t| t > 0)
            .ok_or_else(|| ctx("threads is not a positive integer"))?;
        let cold_best = field("cold_best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("cold_best_ns is not a positive integer"))?;
        let cold_mean = field("cold_mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("cold_mean_ns is not an integer"))?;
        if cold_mean < cold_best {
            return Err(ctx("cold_mean_ns is below cold_best_ns"));
        }
        let warm_best = field("warm_best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("warm_best_ns is not a positive integer"))?;
        let warm_mean = field("warm_mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("warm_mean_ns is not an integer"))?;
        if warm_mean < warm_best {
            return Err(ctx("warm_mean_ns is below warm_best_ns"));
        }
        if warm_best > cold_best {
            return Err(ctx(&format!(
                "reuse criterion violated: warm {warm_best} ns > cold {cold_best} ns \
                 ({engine} on {family} @ {n})"
            )));
        }
        field("reps")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("reps is not a positive integer"))?;
        let ok = field("bit_identical")?
            .as_bool()
            .ok_or_else(|| ctx("bit_identical is not a boolean"))?;
        if !ok {
            return Err(ctx("labels were not bit-identical to the oracle"));
        }
        match coverage
            .iter_mut()
            .find(|(e2, c2, _, _)| *e2 == engine && *c2 == conn)
        {
            Some((_, _, fams, ns)) => {
                fams.push(family);
                ns.push(n);
            }
            None => coverage.push((engine, conn, vec![family], vec![n])),
        }
    }
    // Every registered engine must be covered under both connectivities.
    for info in registry() {
        for want in [4u64, 8] {
            let Some((_, _, fams, ns)) = coverage
                .iter_mut()
                .find(|(e, c, _, _)| e == info.kind.name() && *c == want)
            else {
                return Err(format!(
                    "registered engine {:?} has no {want}-connectivity entries",
                    info.kind.name()
                ));
            };
            fams.sort_unstable();
            fams.dedup();
            ns.sort_unstable();
            ns.dedup();
            if fams.len() < 3 || ns.len() < 2 {
                return Err(format!(
                    "coverage too thin for engine {:?} at {want}-connectivity: \
                     {} families × {} sizes (need ≥ 3 × ≥ 2)",
                    info.kind.name(),
                    fams.len(),
                    ns.len()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ReuseReport {
        let mut entries = Vec::new();
        for info in registry() {
            for family in ["random50", "blobs", "checker"] {
                for n in [64usize, 128] {
                    for conn in [4u32, 8] {
                        entries.push(Entry {
                            engine: info.kind.name().to_string(),
                            family: family.to_string(),
                            n,
                            conn,
                            threads: if info.multithreaded { THREADS } else { 1 },
                            cold_best_ns: 5000,
                            cold_mean_ns: 5600,
                            warm_best_ns: 4000,
                            warm_mean_ns: 4400,
                            reps: 3,
                            bit_identical: true,
                        });
                    }
                }
            }
        }
        ReuseReport {
            scale: "full".to_string(),
            engines: registry()
                .iter()
                .map(|e| e.kind.name().to_string())
                .collect(),
            families: vec![
                "random50".to_string(),
                "blobs".to_string(),
                "checker".to_string(),
            ],
            sides: vec![64, 128],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let text = tiny_report().to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report().to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_enforces_warm_at_least_cold() {
        let mut report = tiny_report();
        report.entries[5].warm_best_ns = report.entries[5].cold_best_ns + 1;
        report.entries[5].warm_mean_ns = report.entries[5].cold_best_ns + 2;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("reuse criterion"), "{err}");
    }

    #[test]
    fn validation_rejects_non_identical_labels() {
        let mut report = tiny_report();
        report.entries[0].bit_identical = false;
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn validation_requires_every_registered_engine() {
        let mut report = tiny_report();
        report.entries.retain(|e| e.engine != "stream");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("stream"), "{err}");
    }

    #[test]
    fn validation_rejects_unregistered_engines() {
        let mut report = tiny_report();
        report.entries[0].engine = "warp-drive".to_string();
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("not in the registry"), "{err}");
    }

    #[test]
    fn validation_rejects_thin_coverage() {
        let mut report = tiny_report();
        report.entries.retain(|e| e.family == "random50");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        // A real (tiny) sweep must produce a schema-valid file with
        // bit-identical labels. The warm ≥ cold *timing* criterion is
        // enforced by CI's dedicated sequential bench-smoke step (`slap-bench
        // reuse --quick` + `check`); under `cargo test` every suite shares
        // the host concurrently, so a pure timing inversion here is noise,
        // not a bug — any other validation failure still fails the test.
        let report = run_reuse(true, |_| {});
        assert!(report.entries.iter().all(|e| e.bit_identical));
        if let Err(e) = validate(&report.to_json(), false) {
            assert!(
                e.contains("reuse criterion"),
                "non-timing validation failure: {e}"
            );
        }
    }
}
