//! The `slap-bench baseline` wall-clock sweep and its JSON schema.
//!
//! Where the criterion benches give per-operation microtimings, the baseline
//! sweep records the end-to-end wall-clock trajectory the ROADMAP asks for:
//! the BFS oracle vs. the word-parallel fast engine vs. the simulated SLAP
//! run-based Algorithm CC, across image families and sizes, serialized to
//! `BENCH_baseline.json` at the repository root. Each recorded point is the
//! best and mean of several repetitions on deterministic workloads, and the
//! fast/simulated entries assert bit-identical labels against the oracle
//! while they are being timed.
//!
//! The schema is validated by [`validate`] — a small hand-rolled JSON reader
//! (the workspace's `serde` is an offline stub with no real serialization) —
//! which CI runs against both a fresh `--quick` sweep and the committed
//! baseline file.

use crate::json;
use crate::sweep::{self, conn_id, CONNS, SEED};
use slap_cc::engine::EngineKind;
use slap_cc::{label_components_runs, CcOptions};
use slap_image::{LabelGrid, TileStats};
use slap_unionfind::RankHalvingUf;
use std::fmt::Write as _;

/// Schema identifier stamped into (and required from) every baseline file.
/// `v3` added the coarse-to-fine block-classification counters
/// (`tiles_background` / `tiles_interior` / `tiles_boundary` on fast-engine
/// entries) and raised the headline gate to the ROADMAP target (≥ 5× the
/// oracle on `random50` @ 2048², 4-connectivity, plus the
/// [`EIGHT_OVER_FOUR_BOUND`] regression bound); `v2` added the connectivity
/// column. Older files no longer validate.
pub const SCHEMA: &str = "slap-bench-baseline/v3";

/// Regression bound on the fast engine's 8-over-4-connectivity wall-clock
/// ratio at the headline point (`random50` @ 2048²). The v3 regeneration
/// recorded ≈ 1.7× (the popcount row merge made 4-connectivity much faster
/// while the shared diagonal kernel held 8-connectivity level); the bound
/// leaves noise headroom but fails the sweep if the 8-connectivity path
/// ever falls off the word-level kernel onto a per-run slow path again.
pub const EIGHT_OVER_FOUR_BOUND: f64 = 2.2;

/// Engine identifiers, in sweep order.
pub const ENGINES: &[&str] = &["oracle-bfs", "fast", "slap-sim-runs"];

/// The registry engines the baseline sweep times, with the legacy ids the
/// schema records (the simulated Algorithm CC rides along as the third,
/// non-registry column — it is a paper simulation, not a host engine).
const HOST_ENGINES: &[(EngineKind, &str)] =
    &[(EngineKind::Bfs, "oracle-bfs"), (EngineKind::Fast, "fast")];

/// One timed (family, size, connectivity, engine) point.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Workload family name (a `gen::by_name` key).
    pub family: String,
    /// Image side (the image is `n × n`).
    pub n: usize,
    /// Adjacency convention: `4` or `8`.
    pub conn: u32,
    /// Engine id (one of [`ENGINES`]).
    pub engine: String,
    /// Best wall-clock nanoseconds over the repetitions.
    pub best_ns: u64,
    /// Mean wall-clock nanoseconds over the repetitions.
    pub mean_ns: u64,
    /// Number of timed repetitions.
    pub reps: usize,
    /// For non-oracle engines: labels were bit-identical to the oracle.
    pub bit_identical: Option<bool>,
    /// For engines with a coarse-to-fine first pass: the word × 2-row tile
    /// classification counts of the timed call.
    pub tiles: Option<TileStats>,
}

/// A finished sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Families swept.
    pub families: Vec<String>,
    /// Sides swept.
    pub sides: Vec<usize>,
    /// All timed points.
    pub entries: Vec<Entry>,
}

/// Sweep parameters per scale.
fn sweep_params(quick: bool) -> (&'static [&'static str], &'static [usize]) {
    const FAMILIES: &[&str] = &["random50", "blobs", "checker", "fig3a"];
    if quick {
        (FAMILIES, &[64, 128, 256])
    } else {
        (FAMILIES, &[256, 512, 1024, 2048])
    }
}

/// Runs the sweep. `progress` receives one line per timed point. The host
/// engines are warm registry sessions ([`EngineKind::session`]); the first
/// ([`EngineKind::Bfs`]) doubles as the bit-identity reference.
pub fn run_baseline(quick: bool, mut progress: impl FnMut(&str)) -> BaselineReport {
    let (families, sides) = sweep_params(quick);
    let mut entries = Vec::new();
    let mut sessions: Vec<_> = HOST_ENGINES
        .iter()
        .map(|&(kind, id)| (kind.session(1), id, LabelGrid::new_background(1, 1)))
        .collect();
    sweep::drive(families, sides, quick, |p| {
        let (family, n, conn, cid, img, reps) = (p.family, p.n, p.conn, p.cid, p.img, p.reps);
        // Host engines from the registry; the oracle comes first and
        // its (final) grid is the identity reference for the rest.
        let mut truth = LabelGrid::new_background(1, 1);
        for (session, id, grid) in &mut sessions {
            let mut stats = None;
            let (best, mean) = sweep::time_reps(reps, || {
                stats = Some(session.label_into(std::hint::black_box(img), conn, grid));
            });
            let identical = if session.kind() == EngineKind::Bfs {
                std::mem::swap(&mut truth, grid);
                None
            } else {
                Some(*grid == truth)
            };
            let tiles = stats.map(|s| s.tiles).filter(|t: &TileStats| t.total() > 0);
            progress(&format!(
                "{family}/{n}/{cid}-conn {id}: {:.3} ms",
                best as f64 / 1e6
            ));
            entries.push(Entry {
                family: family.to_string(),
                n,
                conn: cid,
                engine: id.to_string(),
                best_ns: best,
                mean_ns: mean,
                reps,
                bit_identical: identical,
                tiles,
            });
        }
        // Simulated SLAP (run-based Algorithm CC). The identity
        // check runs on the kept labels *outside* the timed region,
        // same as the fast engine's.
        let sim_reps = reps.min(3);
        let opts = CcOptions {
            connectivity: conn,
            ..CcOptions::default()
        };
        let mut sim_labels = None;
        let (best, mean) = sweep::time_reps(sim_reps, || {
            let run = label_components_runs::<RankHalvingUf>(std::hint::black_box(img), &opts);
            sim_labels = Some(run.labels);
        });
        let sim_ok = sim_labels.as_ref() == Some(&truth);
        progress(&format!(
            "{family}/{n}/{cid}-conn slap-sim-runs: {:.3} ms",
            best as f64 / 1e6
        ));
        entries.push(Entry {
            family: family.to_string(),
            n,
            conn: cid,
            engine: "slap-sim-runs".to_string(),
            best_ns: best,
            mean_ns: mean,
            reps: sim_reps,
            bit_identical: Some(sim_ok),
            tiles: None,
        });
    });
    BaselineReport {
        scale: if quick { "quick" } else { "full" }.to_string(),
        families: families.iter().map(|s| s.to_string()).collect(),
        sides: sides.to_vec(),
        entries,
    }
}

impl BaselineReport {
    /// The speedup of `num` over `den` on one (family, n, conn), by best
    /// time.
    fn speedup(&self, family: &str, n: usize, conn: u32, num: &str, den: &str) -> Option<f64> {
        let find = |engine: &str| {
            self.entries
                .iter()
                .find(|e| e.family == family && e.n == n && e.conn == conn && e.engine == engine)
        };
        let (a, b) = (find(num)?, find(den)?);
        Some(a.best_ns as f64 / b.best_ns.max(1) as f64)
    }

    /// Serializes the report. Hand-rolled (the workspace `serde` is a
    /// no-op stub); [`validate`] checks the inverse direction.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", json::quote(SCHEMA));
        let _ = writeln!(s, "  \"scale\": {},", json::quote(&self.scale));
        let _ = writeln!(s, "  \"seed\": {SEED},");
        let fams: Vec<String> = self.families.iter().map(|f| json::quote(f)).collect();
        let _ = writeln!(s, "  \"families\": [{}],", fams.join(", "));
        let sides: Vec<String> = self.sides.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(s, "  \"sides\": [{}],", sides.join(", "));
        let conns: Vec<String> = CONNS.iter().map(|&c| conn_id(c).to_string()).collect();
        let _ = writeln!(s, "  \"conns\": [{}],", conns.join(", "));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"engine\": {}, \"best_ns\": {}, \"mean_ns\": {}, \"reps\": {}",
                json::quote(&e.family),
                e.n,
                e.conn,
                json::quote(&e.engine),
                e.best_ns,
                e.mean_ns,
                e.reps
            );
            if let Some(ok) = e.bit_identical {
                let _ = write!(s, ", \"bit_identical\": {ok}");
            }
            if let Some(t) = e.tiles {
                let _ = write!(
                    s,
                    ", \"tiles_background\": {}, \"tiles_interior\": {}, \"tiles_boundary\": {}",
                    t.background, t.interior, t.boundary
                );
            }
            s.push('}');
            if i + 1 < self.entries.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n");
        // Derived headline ratios, one per (family, n, conn).
        s.push_str("  \"speedups\": [\n");
        let mut lines = Vec::new();
        for family in &self.families {
            for &n in &self.sides {
                for &conn in CONNS {
                    let cid = conn_id(conn);
                    let fo = self.speedup(family, n, cid, "oracle-bfs", "fast");
                    let so = self.speedup(family, n, cid, "slap-sim-runs", "fast");
                    if let (Some(fo), Some(so)) = (fo, so) {
                        lines.push(format!(
                            "    {{\"family\": {}, \"n\": {}, \"conn\": {}, \"fast_over_oracle\": {:.3}, \"sim_over_fast\": {:.3}}}",
                            json::quote(family),
                            n,
                            cid,
                            fo,
                            so
                        ));
                    }
                }
            }
        }
        s.push_str(&lines.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Validates a baseline JSON document against the schema. With
/// `require_full` the file must also be a full-scale sweep containing the
/// headline criterion: the fast engine ≥ 3× faster than the oracle on
/// `random50` at 2048², with bit-identical labels.
pub fn validate(text: &str, require_full: bool) -> Result<(), String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let schema = get("schema")?.as_str().ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let scale = get("scale")?.as_str().ok_or("scale is not a string")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("scale {scale:?} is neither quick nor full"));
    }
    if require_full && scale != "full" {
        return Err("a full-scale baseline is required".to_string());
    }
    let entries = get("entries")?
        .as_array()
        .ok_or("entries is not an array")?;
    if entries.is_empty() {
        return Err("entries is empty".to_string());
    }
    // Per-entry shape, plus the (family, n, conn) → engine coverage map.
    let mut coverage: Vec<(String, u64, u64, [bool; 3])> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let ctx = |msg: &str| format!("entry {i}: {msg}");
        let eo = e.as_object().ok_or_else(|| ctx("not an object"))?;
        let field = |key: &str| {
            eo.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ctx(&format!("missing {key:?}")))
        };
        let family = field("family")?
            .as_str()
            .ok_or_else(|| ctx("family is not a string"))?
            .to_string();
        let n = field("n")?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("n is not a positive integer"))?;
        let conn = field("conn")?
            .as_u64()
            .filter(|&c| c == 4 || c == 8)
            .ok_or_else(|| ctx("conn is not 4 or 8"))?;
        let engine = field("engine")?
            .as_str()
            .ok_or_else(|| ctx("engine is not a string"))?;
        let ei = ENGINES
            .iter()
            .position(|&k| k == engine)
            .ok_or_else(|| ctx(&format!("unknown engine {engine:?}")))?;
        let best = field("best_ns")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("best_ns is not a positive integer"))?;
        let mean = field("mean_ns")?
            .as_u64()
            .ok_or_else(|| ctx("mean_ns is not an integer"))?;
        if mean < best {
            return Err(ctx("mean_ns is below best_ns"));
        }
        field("reps")?
            .as_u64()
            .filter(|&v| v > 0)
            .ok_or_else(|| ctx("reps is not a positive integer"))?;
        if engine != "oracle-bfs" {
            let ok = eo
                .iter()
                .find(|(k, _)| k == "bit_identical")
                .and_then(|(_, v)| v.as_bool())
                .ok_or_else(|| ctx("non-oracle entry lacks bit_identical"))?;
            if !ok {
                return Err(ctx("labels were not bit-identical to the oracle"));
            }
        }
        if engine == "fast" {
            // v3: fast entries carry the coarse-to-fine classification, and
            // the counters must cover the n × n frame's word-tiles exactly —
            // `background + interior + boundary == words_per_row × rows`.
            let tile = |key: &str| {
                field(key)?
                    .as_u64()
                    .ok_or_else(|| ctx(&format!("{key} is not an integer")))
            };
            let total =
                tile("tiles_background")? + tile("tiles_interior")? + tile("tiles_boundary")?;
            let expect = (n.div_ceil(64)) * n;
            if total != expect {
                return Err(ctx(&format!(
                    "tile counters cover {total} word-tiles, frame has {expect}"
                )));
            }
        }
        match coverage
            .iter_mut()
            .find(|(f, m, c, _)| *f == family && *m == n && *c == conn)
        {
            Some((_, _, _, seen)) => seen[ei] = true,
            None => {
                let mut seen = [false; 3];
                seen[ei] = true;
                coverage.push((family, n, conn, seen));
            }
        }
    }
    // Coverage: for each connectivity, ≥ 3 families × ≥ 3 sizes with all
    // three engines present.
    for want in [4u64, 8] {
        let full_points: Vec<&(String, u64, u64, [bool; 3])> = coverage
            .iter()
            .filter(|(_, _, c, seen)| *c == want && seen.iter().all(|&s| s))
            .collect();
        let mut fams: Vec<&str> = full_points.iter().map(|(f, _, _, _)| f.as_str()).collect();
        fams.sort_unstable();
        fams.dedup();
        let mut ns: Vec<u64> = full_points.iter().map(|(_, n, _, _)| *n).collect();
        ns.sort_unstable();
        ns.dedup();
        if fams.len() < 3 || ns.len() < 3 {
            return Err(format!(
                "coverage too thin at {want}-connectivity: {} families × {} sizes \
                 with all engines (need ≥ 3 × ≥ 3)",
                fams.len(),
                ns.len()
            ));
        }
    }
    if require_full {
        let best_of = |engine: &str, conn: u64| {
            entries.iter().find_map(|e| {
                let eo = e.as_object()?;
                let s = |k: &str| eo.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                (s("family")?.as_str()? == "random50"
                    && s("n")?.as_u64()? == 2048
                    && s("conn")?.as_u64()? == conn
                    && s("engine")?.as_str()? == engine)
                    .then(|| s("best_ns")?.as_u64())
                    .flatten()
            })
        };
        let oracle = best_of("oracle-bfs", 4).ok_or("no oracle-bfs entry for random50 @ 2048")?;
        let fast = best_of("fast", 4).ok_or("no fast entry for random50 @ 2048")?;
        let ratio = oracle as f64 / fast.max(1) as f64;
        if ratio < 5.0 {
            return Err(format!(
                "fast engine is only {ratio:.2}× the oracle on random50 @ 2048 (need ≥ 5×)"
            ));
        }
        let fast8 = best_of("fast", 8).ok_or("no 8-conn fast entry for random50 @ 2048")?;
        let gap = fast8 as f64 / fast.max(1) as f64;
        if gap > EIGHT_OVER_FOUR_BOUND {
            return Err(format!(
                "fast 8-connectivity is {gap:.2}× its 4-connectivity time on random50 @ 2048 \
                 (bound {EIGHT_OVER_FOUR_BOUND})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BaselineReport {
        let mut entries = Vec::new();
        for family in ["random50", "blobs", "checker"] {
            for n in [64usize, 128, 256, 2048] {
                for conn in [4u32, 8] {
                    for engine in ENGINES {
                        entries.push(Entry {
                            family: family.to_string(),
                            n,
                            conn,
                            engine: engine.to_string(),
                            best_ns: if *engine == "oracle-bfs" { 8000 } else { 1000 },
                            mean_ns: 8500,
                            reps: 3,
                            bit_identical: (*engine != "oracle-bfs").then_some(true),
                            tiles: (*engine == "fast").then_some(TileStats {
                                background: 1,
                                interior: 1,
                                boundary: (n.div_ceil(64) * n) as u64 - 2,
                            }),
                        });
                    }
                }
            }
        }
        BaselineReport {
            scale: "full".to_string(),
            families: vec![
                "random50".to_string(),
                "blobs".to_string(),
                "checker".to_string(),
            ],
            sides: vec![64, 128, 256, 2048],
            entries,
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let report = tiny_report();
        let text = report.to_json();
        validate(&text, false).expect("quick validation");
        validate(&text, true).expect("full validation");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let text = tiny_report().to_json().replace(SCHEMA, "bogus/v0");
        assert!(validate(&text, false).is_err());
    }

    #[test]
    fn validation_rejects_non_identical_labels() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "fast" {
                e.bit_identical = Some(false);
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn validation_rejects_thin_coverage() {
        let mut report = tiny_report();
        report.entries.retain(|e| e.family == "random50");
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("coverage"), "{err}");
    }

    #[test]
    fn full_validation_enforces_the_headline_speedup() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "fast" && e.family == "random50" && e.n == 2048 {
                e.best_ns = 2000; // only 4× the oracle's 8000
            }
        }
        let text = report.to_json();
        validate(&text, false).expect("quick validation ignores the ratio");
        let err = validate(&text, true).unwrap_err();
        assert!(err.contains("5×"), "{err}");
    }

    #[test]
    fn full_validation_bounds_the_eight_over_four_gap() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "fast" && e.family == "random50" && e.n == 2048 && e.conn == 8 {
                e.best_ns = 2500; // 2.5× the 4-conn entry's 1000 — past the bound
            }
        }
        let text = report.to_json();
        validate(&text, false).expect("quick validation ignores the gap");
        let err = validate(&text, true).unwrap_err();
        assert!(err.contains("8-connectivity"), "{err}");
    }

    #[test]
    fn validation_rejects_missing_or_short_tile_counters() {
        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "fast" {
                e.tiles = None;
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("tiles_background"), "{err}");

        let mut report = tiny_report();
        for e in &mut report.entries {
            if e.engine == "fast" {
                if let Some(t) = &mut e.tiles {
                    t.boundary -= 1; // counters no longer cover the frame
                }
            }
        }
        let err = validate(&report.to_json(), false).unwrap_err();
        assert!(err.contains("word-tiles"), "{err}");
    }

    #[test]
    fn quick_sweep_smoke() {
        // A real (tiny) sweep must validate. Keep the sizes minuscule: this
        // runs in `cargo test`.
        let report = run_baseline(true, |_| {});
        validate(&report.to_json(), false).expect("fresh quick sweep validates");
    }
}
