//! Property tests for the two executors.
//!
//! * virtual-time pipeline: clocks are monotone, messages are conserved and
//!   FIFO, makespans dominate every PE, and timing respects causality under
//!   arbitrary charge/send schedules;
//! * lock-step: the threaded runner is bit-identical to the sequential one
//!   for randomized relay programs at any thread count.

use proptest::prelude::*;
use slap_machine::{
    run_lockstep, run_lockstep_threaded, run_pipeline, PeCtx, PeIo, PeProgram, PeStatus,
};

/// A scripted pipeline stage: for each received message, charge some units
/// and forward or drop it; plus some locally generated sends up front.
#[derive(Clone, Debug)]
struct StageScript {
    pre_charge: u64,
    pre_sends: u8,
    per_msg_charge: u64,
    forward: bool,
}

fn stage_strategy() -> impl Strategy<Value = StageScript> {
    (0u64..50, 0u8..5, 0u64..20, prop::bool::ANY).prop_map(
        |(pre_charge, pre_sends, per_msg_charge, forward)| StageScript {
            pre_charge,
            pre_sends,
            per_msg_charge,
            forward,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_invariants_hold(scripts in prop::collection::vec(stage_strategy(), 1..12)) {
        let n = scripts.len();
        let (_, report) = run_pipeline(n, |pe, ctx: &mut PeCtx<u64>| {
            let s = &scripts[pe];
            ctx.charge(s.pre_charge);
            for i in 0..s.pre_sends {
                ctx.send(i as u64);
            }
            while let Some(m) = ctx.recv() {
                ctx.charge(s.per_msg_charge);
                if s.forward {
                    ctx.send(m);
                }
            }
        });
        // makespan dominates
        for p in &report.per_pe {
            prop_assert!(p.finish <= report.makespan);
            prop_assert!(p.busy <= p.finish);
        }
        // conservation: what PE i sends, PE i+1 receives
        for i in 0..n - 1 {
            prop_assert_eq!(report.per_pe[i].sent, report.per_pe[i + 1].received);
        }
        // causality: a PE that receives k messages cannot finish before k
        // dequeue steps have elapsed
        for p in &report.per_pe {
            prop_assert!(p.finish >= p.received);
        }
        // EOS chain: finishes strictly increase by at least one hop... not
        // necessarily (a later PE can be idle-bound), but the last PE can
        // never finish before the first (its EOS arrives after PE0's).
        prop_assert!(report.per_pe[n - 1].finish >= report.per_pe[0].finish);
    }

    #[test]
    fn pipeline_message_order_is_fifo(k in 1usize..30) {
        let (outputs, _) = run_pipeline(2, |pe, ctx: &mut PeCtx<u64>| {
            let mut got = Vec::new();
            if pe == 0 {
                for i in 0..k as u64 {
                    ctx.send(i);
                }
            }
            while let Some(m) = ctx.recv() {
                got.push(m);
            }
            got
        });
        let expect: Vec<u64> = (0..k as u64).collect();
        prop_assert_eq!(&outputs[1], &expect);
    }
}

/// Randomized relay machine for lock-step equivalence testing: each PE waits
/// a scripted number of ticks, forwards the token with a scripted increment,
/// possibly bouncing it left first.
struct ScriptedRelay {
    delay: u8,
    bump: u8,
    bounce_left: bool,
    index: usize,
    n: usize,
    token: Option<u64>,
    sent: bool,
    final_value: u64,
}

impl PeProgram for ScriptedRelay {
    type Word = u64;
    fn tick(&mut self, io: &mut PeIo<u64>) -> PeStatus {
        if let Some(w) = io.recv_left() {
            self.token = Some(w);
        }
        if let Some(w) = io.recv_right() {
            // bounced token comes back with a marker bit
            self.token = Some(w | 1 << 40);
        }
        if self.delay > 0 {
            self.delay -= 1;
            return PeStatus::Running;
        }
        match self.token.take() {
            None if self.index == 0 && !self.sent => {
                self.sent = true;
                io.send_right(1);
                PeStatus::Done
            }
            None => PeStatus::Running,
            Some(w) => {
                let w = w + self.bump as u64;
                if self.index + 1 == self.n {
                    self.final_value = w;
                    return PeStatus::Done;
                }
                if self.bounce_left && self.index > 0 && w & (1 << 40) == 0 {
                    io.send_left(w);
                    // after bouncing, pass the original onward too
                    io.send_right(w);
                    PeStatus::Done
                } else {
                    io.send_right(w);
                    PeStatus::Done
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn threaded_lockstep_equals_sequential(
        script in prop::collection::vec((0u8..4, 0u8..10, prop::bool::ANY), 2..24),
        threads in 2usize..6,
    ) {
        let n = script.len();
        let build = || -> Vec<ScriptedRelay> {
            script
                .iter()
                .enumerate()
                .map(|(i, &(delay, bump, bounce))| ScriptedRelay {
                    delay,
                    bump,
                    bounce_left: bounce,
                    index: i,
                    n,
                    token: None,
                    sent: false,
                    final_value: 0,
                })
                .collect()
        };
        let mut seq = build();
        let seq_report = run_lockstep(&mut seq, 100_000);
        let mut par = build();
        let par_report = run_lockstep_threaded(&mut par, threads, 100_000);
        prop_assert_eq!(seq_report.rounds, par_report.rounds);
        prop_assert_eq!(seq_report.ticks, par_report.ticks);
        prop_assert_eq!(
            seq.last().unwrap().final_value,
            par.last().unwrap().final_value
        );
    }
}
