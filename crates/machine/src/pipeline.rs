//! Virtual-time executor for one-directional pipeline programs.
//!
//! `Union-Find-Pass` and `Label-Pass` (paper Figs. 5 and 6) have a pure
//! pipeline shape: PE `i` consumes a queue written by PE `i−1` and writes a
//! queue read by PE `i+1`, with all other work local. For this shape, a
//! cycle-by-cycle simulation is unnecessary: running the PEs to completion in
//! array order while tracking per-PE clocks and per-message availability
//! times yields *exactly* the same step counts, because information only
//! flows forward.
//!
//! The timing rules (constants from [`crate::costs`]):
//!
//! * local work advances the local clock by its unit cost ([`PeCtx::charge`]);
//! * a message enqueued when the sender's clock reads `t` becomes available
//!   to the receiver at `t + LINK_LATENCY`;
//! * a receive first waits (idling) until the next message—or the EOS
//!   sentinel—is available, then charges `DEQUEUE`. The paper's processors
//!   poll the queue every step, so blocked time is real machine time; the
//!   optional idle hook lets the program spend it on useful local work (the
//!   paper's "perform some path compression when they would otherwise just
//!   be waiting");
//! * a send charges `word_steps` (1 on the word-wide SLAP; the message bit
//!   width on the Theorem 5 bit-serial SLAP).
//!
//! The executor appends the paper's explicit EOS handshake itself: after a
//! stage function returns, one `ENQUEUE` is charged and the EOS becomes
//! available to the next PE, matching Fig. 5 line 15 / Fig. 6 line 17.
//!
//! # Allocation discipline
//!
//! Message queues are stored structure-of-arrays — availability times in one
//! flat `Vec<u64>`, payloads in a parallel `Vec<M>` — and the runner owns
//! exactly two such queues, ping-ponged between the inbox and outbox roles as
//! it walks the array. After the first PE the hot loop performs no heap
//! allocation at all, and [`run_pipeline_pooled`] lets callers carry the same
//! [`PipelineBuffers`] across *passes* (union-find pass, label pass, both
//! directional passes), so a full Algorithm CC run reuses one pair of
//! buffers end to end.

use crate::costs;
use crate::report::{PeStats, PipelineReport};
use crate::trace::{push_span, Span, SpanKind};

/// Reusable queue storage for the pipeline executor: two structure-of-arrays
/// message queues (availability clocks and payloads in separate contiguous
/// arrays) that the runner ping-pongs between the inbox and outbox roles.
///
/// Create one with [`PipelineBuffers::new`] and pass it to
/// [`run_pipeline_pooled`] to amortize queue allocations across passes; the
/// buffers only ever grow to the high-water message count of the passes run
/// through them.
#[derive(Debug, Default)]
pub struct PipelineBuffers<M> {
    in_avail: Vec<u64>,
    in_payload: Vec<M>,
    out_avail: Vec<u64>,
    out_payload: Vec<M>,
}

impl<M> PipelineBuffers<M> {
    /// Creates an empty buffer pool.
    pub fn new() -> Self {
        PipelineBuffers {
            in_avail: Vec::new(),
            in_payload: Vec::new(),
            out_avail: Vec::new(),
            out_payload: Vec::new(),
        }
    }

    /// Clears both queues, keeping their capacity.
    fn reset(&mut self) {
        self.in_avail.clear();
        self.in_payload.clear();
        self.out_avail.clear();
        self.out_payload.clear();
    }

    /// Current total capacity (messages) held across both queues.
    pub fn capacity(&self) -> usize {
        self.in_payload.capacity() + self.out_payload.capacity()
    }
}

/// Configuration for one pipeline pass.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Number of processing elements (= image columns).
    pub n_pes: usize,
    /// Steps to move one message across a link (1 for word links; the
    /// message bit width for the restricted 1-bit-link SLAP of Theorem 5).
    pub word_steps: u64,
    /// Clock value every PE starts at (e.g. the cost of the image input
    /// phase, or 0 to measure the pass alone).
    pub start_clock: u64,
}

impl PipelineConfig {
    /// Standard word-link SLAP with clocks starting at zero.
    pub fn word_links(n_pes: usize) -> Self {
        PipelineConfig {
            n_pes,
            word_steps: costs::WORD_STEPS,
            start_clock: 0,
        }
    }

    /// Theorem 5 restricted SLAP: links carry one bit per step, so a
    /// `bits`-bit message costs `bits` steps to send.
    pub fn bit_links(n_pes: usize, bits: u32) -> Self {
        PipelineConfig {
            n_pes,
            word_steps: costs::bit_serial_steps(bits),
            start_clock: 0,
        }
    }
}

/// Execution context handed to each PE's stage function.
///
/// Exposes the paper's communication primitives with exact step accounting.
/// Messages must be received in FIFO order; after [`recv`](PeCtx::recv)
/// returns `None` (the EOS), further receives are a logic error.
pub struct PeCtx<M> {
    pe: usize,
    clock: u64,
    word_steps: u64,
    // Inbox/outbox queues, structure-of-arrays. The PE *owns* them for the
    // duration of its stage; the runner takes them back afterwards and
    // recycles the drained inbox as the next PE's outbox, so steady-state
    // execution allocates nothing.
    in_avail: Vec<u64>,
    in_payload: Vec<M>,
    inbox_pos: usize,
    ready_ptr: usize,
    eos_avail: u64,
    eos_consumed: bool,
    out_avail: Vec<u64>,
    out_payload: Vec<M>,
    stats: PeStats,
    spans: Option<Vec<Span>>,
}

impl<M> PeCtx<M> {
    fn new(
        pe: usize,
        clock: u64,
        word_steps: u64,
        bufs: &mut PipelineBuffers<M>,
        eos_avail: u64,
    ) -> Self {
        PeCtx {
            pe,
            clock,
            word_steps,
            in_avail: std::mem::take(&mut bufs.in_avail),
            in_payload: std::mem::take(&mut bufs.in_payload),
            inbox_pos: 0,
            ready_ptr: 0,
            eos_avail,
            eos_consumed: false,
            out_avail: std::mem::take(&mut bufs.out_avail),
            out_payload: std::mem::take(&mut bufs.out_payload),
            stats: PeStats::default(),
            spans: None,
        }
    }

    /// Hands the queues back to the pool, rotating roles: this PE's outbox
    /// becomes the next PE's inbox, and the drained inbox (cleared, capacity
    /// kept) becomes the next outbox.
    fn recycle_into(&mut self, bufs: &mut PipelineBuffers<M>) {
        bufs.in_avail = std::mem::take(&mut self.out_avail);
        bufs.in_payload = std::mem::take(&mut self.out_payload);
        self.in_avail.clear();
        self.in_payload.clear();
        bufs.out_avail = std::mem::take(&mut self.in_avail);
        bufs.out_payload = std::mem::take(&mut self.in_payload);
    }

    /// This PE's index in the array (in flow direction: 0 is the first PE).
    #[inline]
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Current local clock.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Charges `units` of local work.
    #[inline]
    pub fn charge(&mut self, units: u64) {
        if let Some(spans) = &mut self.spans {
            push_span(spans, SpanKind::Busy, self.clock, self.clock + units);
        }
        self.clock += units;
        self.stats.busy += units;
    }

    fn wait_until(&mut self, t: u64, mut idle_hook: Option<&mut dyn FnMut(u64) -> u64>) {
        if t > self.clock {
            let gap = t - self.clock;
            if let Some(hook) = idle_hook.as_mut() {
                let used = hook(gap);
                debug_assert!(used <= gap, "idle hook overspent its budget");
                self.stats.idle_used += used.min(gap);
            }
            if let Some(spans) = &mut self.spans {
                push_span(spans, SpanKind::Idle, self.clock, t);
            }
            self.stats.idle += gap;
            self.clock = t;
        }
    }

    fn update_queue_depth(&mut self) {
        while self.ready_ptr < self.in_avail.len() && self.in_avail[self.ready_ptr] <= self.clock {
            self.ready_ptr += 1;
        }
        let depth = (self.ready_ptr.max(self.inbox_pos) - self.inbox_pos) as u64;
        self.stats.max_queue = self.stats.max_queue.max(depth);
    }

    /// Receives the next message, blocking (idle) until it is available.
    /// Returns `None` when the EOS sentinel is consumed instead.
    pub fn recv(&mut self) -> Option<M>
    where
        M: Copy,
    {
        self.recv_impl(None)
    }

    /// Like [`recv`](PeCtx::recv), but spends blocked steps through
    /// `idle_hook(budget) -> used` (e.g. union–find idle compression).
    pub fn recv_with(&mut self, idle_hook: &mut dyn FnMut(u64) -> u64) -> Option<M>
    where
        M: Copy,
    {
        self.recv_impl(Some(idle_hook))
    }

    fn recv_impl(&mut self, idle_hook: Option<&mut dyn FnMut(u64) -> u64>) -> Option<M>
    where
        M: Copy,
    {
        debug_assert!(!self.eos_consumed, "receive after EOS");
        if self.inbox_pos < self.in_avail.len() {
            let avail = self.in_avail[self.inbox_pos];
            let m = self.in_payload[self.inbox_pos];
            self.inbox_pos += 1;
            self.wait_until(avail, idle_hook);
            self.charge(costs::DEQUEUE);
            self.update_queue_depth();
            self.stats.received += 1;
            Some(m)
        } else {
            self.wait_until(self.eos_avail, idle_hook);
            self.charge(costs::DEQUEUE);
            self.eos_consumed = true;
            None
        }
    }

    /// Sends one message to the next PE, charging the link cost.
    pub fn send(&mut self, m: M) {
        let units = self.word_steps;
        if let Some(spans) = &mut self.spans {
            push_span(spans, SpanKind::Send, self.clock, self.clock + units);
        }
        self.clock += units;
        self.stats.busy += units;
        self.out_avail.push(self.clock + costs::LINK_LATENCY);
        self.out_payload.push(m);
        self.stats.sent += 1;
    }

    /// Messages received so far (excluding EOS).
    pub fn received(&self) -> u64 {
        self.stats.received
    }
}

/// Runs a pipeline pass on the standard word-link SLAP, clocks starting at
/// zero. See [`run_pipeline_with`] for the general form.
pub fn run_pipeline<M: Copy, R>(
    n_pes: usize,
    stage: impl FnMut(usize, &mut PeCtx<M>) -> R,
) -> (Vec<R>, PipelineReport) {
    run_pipeline_with(PipelineConfig::word_links(n_pes), stage)
}

/// Runs one pipeline pass: `stage(pe, ctx)` is invoked for each PE in flow
/// order and must drain its incoming queue to the EOS (calling
/// [`PeCtx::recv`]/[`PeCtx::recv_with`] until `None`) before returning.
///
/// Returns the per-PE stage outputs plus the step-accounting report. The
/// report's makespan is the time the *last* PE finishes, i.e. the time the
/// SIMD controller can start the next phase.
pub fn run_pipeline_with<M: Copy, R>(
    cfg: PipelineConfig,
    stage: impl FnMut(usize, &mut PeCtx<M>) -> R,
) -> (Vec<R>, PipelineReport) {
    let mut bufs = PipelineBuffers::new();
    let (outputs, report, _) = run_pipeline_impl(cfg, &mut bufs, stage, false);
    (outputs, report)
}

/// [`run_pipeline_with`] drawing queue storage from a caller-owned
/// [`PipelineBuffers`] pool, so consecutive passes (and both directional
/// passes of Algorithm CC) reuse the same flat arrays instead of
/// re-allocating per pass.
pub fn run_pipeline_pooled<M: Copy, R>(
    cfg: PipelineConfig,
    bufs: &mut PipelineBuffers<M>,
    stage: impl FnMut(usize, &mut PeCtx<M>) -> R,
) -> (Vec<R>, PipelineReport) {
    let (outputs, report, _) = run_pipeline_impl(cfg, bufs, stage, false);
    (outputs, report)
}

/// [`run_pipeline_with`] with per-PE space–time recording: additionally
/// returns, for each PE, the [`Span`]s of its busy / idle / send intervals
/// (see [`crate::trace`] for the Gantt renderer).
pub fn run_pipeline_traced<M: Copy, R>(
    cfg: PipelineConfig,
    stage: impl FnMut(usize, &mut PeCtx<M>) -> R,
) -> (Vec<R>, PipelineReport, Vec<Vec<Span>>) {
    let mut bufs = PipelineBuffers::new();
    run_pipeline_impl(cfg, &mut bufs, stage, true)
}

fn run_pipeline_impl<M: Copy, R>(
    cfg: PipelineConfig,
    bufs: &mut PipelineBuffers<M>,
    mut stage: impl FnMut(usize, &mut PeCtx<M>) -> R,
    record: bool,
) -> (Vec<R>, PipelineReport, Vec<Vec<Span>>) {
    assert!(cfg.n_pes > 0, "pipeline needs at least one PE");
    bufs.reset();
    let mut outputs = Vec::with_capacity(cfg.n_pes);
    let mut per_pe = Vec::with_capacity(cfg.n_pes);
    let mut traces = Vec::with_capacity(if record { cfg.n_pes } else { 0 });
    // PE 0 sees the EOS immediately (paper Fig. 5 line 8: `if i = 0 then
    // incoming <- eos`).
    let mut eos_avail = cfg.start_clock;
    let mut messages = 0u64;
    let mut makespan = 0u64;
    for pe in 0..cfg.n_pes {
        let mut ctx = PeCtx::new(pe, cfg.start_clock, cfg.word_steps, bufs, eos_avail);
        if record {
            ctx.spans = Some(Vec::new());
        }
        let out = stage(pe, &mut ctx);
        assert!(
            ctx.eos_consumed,
            "stage for PE {pe} returned without draining its queue to EOS"
        );
        // EOS enqueue (Fig. 5 line 15).
        ctx.charge(costs::ENQUEUE);
        let mut stats = ctx.stats;
        stats.finish = ctx.clock;
        makespan = makespan.max(ctx.clock);
        messages += stats.sent;
        eos_avail = ctx.clock + costs::LINK_LATENCY;
        ctx.recycle_into(bufs);
        outputs.push(out);
        per_pe.push(stats);
        if let Some(spans) = ctx.spans {
            traces.push(spans);
        }
    }
    (
        outputs,
        PipelineReport {
            per_pe,
            makespan,
            messages,
        },
        traces,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each PE forwards what it receives and appends its own id.
    fn relay(n: usize) -> (Vec<Vec<u64>>, PipelineReport) {
        run_pipeline(n, |pe, ctx: &mut PeCtx<u64>| {
            let mut seen = Vec::new();
            while let Some(m) = ctx.recv() {
                seen.push(m);
                ctx.send(m);
            }
            ctx.send(pe as u64);
            seen
        })
    }

    #[test]
    fn messages_flow_in_order() {
        let (outputs, _) = relay(4);
        assert_eq!(outputs[0], Vec::<u64>::new());
        assert_eq!(outputs[1], vec![0]);
        assert_eq!(outputs[2], vec![0, 1]);
        assert_eq!(outputs[3], vec![0, 1, 2]);
    }

    #[test]
    fn message_counts_accumulate() {
        let (_, report) = relay(4);
        // PE i sends i+1 messages
        assert_eq!(report.messages, 1 + 2 + 3 + 4);
        assert_eq!(report.per_pe[3].received, 3);
        assert_eq!(report.per_pe[3].sent, 4);
    }

    #[test]
    fn dequeue_cannot_precede_enqueue() {
        // PE 0 sends one message after heavy local work; PE 1 must idle.
        let (_, report) = run_pipeline(2, |pe, ctx: &mut PeCtx<u64>| {
            if pe == 0 {
                ctx.charge(100);
                ctx.send(7);
            }
            while ctx.recv().is_some() {}
        });
        let p1 = &report.per_pe[1];
        // PE 1: waits for the message available at 100 + send(1) + latency(1)
        assert!(p1.idle >= 100, "PE 1 idled only {} steps", p1.idle);
        // and can never finish before PE 0's EOS reaches it
        assert!(report.per_pe[1].finish > report.per_pe[0].finish);
    }

    #[test]
    fn makespan_is_last_finish() {
        let (_, report) = relay(8);
        let max = report.per_pe.iter().map(|p| p.finish).max().unwrap();
        assert_eq!(report.makespan, max);
    }

    #[test]
    fn pipeline_overlaps_work() {
        // n PEs each doing local work k and relaying 1 message: makespan must
        // be O(k + n), not O(n * k) — the pipeline effect of Lemma 1.
        let k = 50u64;
        let n = 20;
        let (_, report) = run_pipeline(n, |_, ctx: &mut PeCtx<u64>| {
            ctx.charge(k);
            while let Some(m) = ctx.recv() {
                ctx.send(m);
            }
            ctx.send(1);
        });
        assert!(
            report.makespan < k + 10 * n as u64,
            "no pipeline overlap: makespan {}",
            report.makespan
        );
    }

    #[test]
    fn bit_links_charge_word_width() {
        let cfg_word = PipelineConfig::word_links(2);
        let cfg_bit = PipelineConfig::bit_links(2, 16);
        let run = |cfg: PipelineConfig| {
            run_pipeline_with(cfg, |pe, ctx: &mut PeCtx<u64>| {
                if pe == 0 {
                    for i in 0..10 {
                        ctx.send(i);
                    }
                }
                while ctx.recv().is_some() {}
            })
            .1
        };
        let w = run(cfg_word);
        let b = run(cfg_bit);
        // 10 sends at 16 steps instead of 1: 150 extra steps at PE 0.
        assert_eq!(b.per_pe[0].busy - w.per_pe[0].busy, 10 * 15);
        assert!(b.makespan > w.makespan + 100);
    }

    #[test]
    fn idle_hook_receives_true_gap() {
        let mut budgets = Vec::new();
        run_pipeline(2, |pe, ctx: &mut PeCtx<u64>| {
            if pe == 0 {
                ctx.charge(40);
                ctx.send(1);
            }
            let mut hook = |b: u64| {
                budgets.push(b);
                b / 2 // pretend we used half the idle time
            };
            while ctx.recv_with(&mut hook).is_some() {}
        });
        // PE 1 first blocks on the message (available at 42), then on EOS.
        assert!(!budgets.is_empty());
        assert!(budgets[0] >= 40);
    }

    #[test]
    fn idle_used_is_recorded() {
        let (_, report) = run_pipeline(2, |pe, ctx: &mut PeCtx<u64>| {
            if pe == 0 {
                ctx.charge(40);
                ctx.send(1);
            }
            let mut hook = |b: u64| b; // use all idle time
            while ctx.recv_with(&mut hook).is_some() {}
        });
        let p1 = &report.per_pe[1];
        assert_eq!(p1.idle_used, p1.idle);
    }

    #[test]
    fn start_clock_shifts_everything() {
        let base = run_pipeline(3, |_, ctx: &mut PeCtx<u64>| while ctx.recv().is_some() {}).1;
        let shifted = run_pipeline_with(
            PipelineConfig {
                start_clock: 100,
                ..PipelineConfig::word_links(3)
            },
            |_, ctx: &mut PeCtx<u64>| while ctx.recv().is_some() {},
        )
        .1;
        assert_eq!(shifted.makespan, base.makespan + 100);
    }

    #[test]
    #[should_panic(expected = "draining")]
    fn stage_must_drain_queue() {
        run_pipeline(2, |_, _ctx: &mut PeCtx<u64>| {});
    }

    #[test]
    fn pooled_run_matches_fresh_run_and_reuses_capacity() {
        let stage = |pe: usize, ctx: &mut PeCtx<u64>| {
            let mut seen = Vec::new();
            while let Some(m) = ctx.recv() {
                seen.push(m);
                ctx.send(m);
            }
            ctx.send(pe as u64);
            seen
        };
        let (fresh_out, fresh_report) = run_pipeline(6, stage);
        let mut bufs = PipelineBuffers::new();
        let cfg = PipelineConfig::word_links(6);
        let (pooled_out, pooled_report) = run_pipeline_pooled(cfg, &mut bufs, stage);
        assert_eq!(pooled_out, fresh_out);
        assert_eq!(pooled_report, fresh_report);
        // A second pass through the same pool must not need more storage.
        let cap = bufs.capacity();
        assert!(cap >= 5, "pool never grew: capacity {cap}");
        let (again_out, again_report) = run_pipeline_pooled(cfg, &mut bufs, stage);
        assert_eq!(again_out, fresh_out);
        assert_eq!(again_report, fresh_report);
        assert_eq!(bufs.capacity(), cap, "steady-state pass grew the pool");
    }

    #[test]
    fn queue_depth_tracks_backlog() {
        // PE 0 floods 20 instant messages; PE 1 processes them slowly.
        let (_, report) = run_pipeline(2, |pe, ctx: &mut PeCtx<u64>| {
            if pe == 0 {
                for i in 0..20 {
                    ctx.send(i);
                }
            }
            while ctx.recv().is_some() {
                ctx.charge(10);
            }
        });
        assert!(
            report.per_pe[1].max_queue > 5,
            "expected backlog, max_queue = {}",
            report.per_pe[1].max_queue
        );
    }
}
