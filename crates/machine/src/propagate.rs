//! Iterative min-label propagation on the lock-step linear array — the
//! GPU-style CCL kernel expressed in the machine model of the paper.
//!
//! Each PE holds one image column as its list of vertical runs (maximal
//! intervals of set rows) and a current label per run. An **iteration** is a
//! Jacobi relaxation step: every PE streams its runs with their labels to
//! both neighbors (one `(interval, label)` word per link per time step,
//! exactly what the machine's `O(lg n)` links carry), relaxes its own
//! next-labels against every adjacent run it hears about, and then joins a
//! global convergence handshake — a changed-flag wave accumulating
//! left-to-right and a verdict wave broadcast right-to-left. Iterations
//! repeat until one changes nothing.
//!
//! This is deliberately the *naive* data-parallel propagation: on a linear
//! array with neighbor-only links there is no global memory to hook or
//! pointer-jump through, so labels spread one column per iteration — the
//! locality wall the SLAP paper's pipeline algorithm (one `O(rows + cols)`
//! sweep each way) was designed to break, three decades before the same
//! contrast reappeared between GPU label-equivalence kernels and
//! union–find-based CCL (Chen et al., arXiv:1708.08180). Running both on
//! identical inputs (`slap-bench propagate`) records that gap in exact
//! machine rounds; the host twin (`slap_image::fast::propagate`) shows what
//! root-hooking plus pointer-jumping reduction does to the iteration count
//! when global memory *is* available.
//!
//! Labels are initialized to the column-major position of the run's first
//! pixel (`col * rows + start`), so the Jacobi fixpoint labels every
//! component with its minimum column-major position — bit-identical to the
//! host engines and the BFS oracle.

use crate::lockstep::{run_lockstep, run_lockstep_threaded, LockstepReport, PeIo, PeStatus};

/// One link word of the propagation protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PMsg {
    /// A run of the sending column: `(start_row, end_row, current_label)`.
    Run(u32, u32, u32),
    /// End of the sender's run stream for this iteration.
    Eos,
    /// Changed-flag accumulation wave, travelling left-to-right: `true` iff
    /// some PE at or left of the sender relaxed a label this iteration.
    Chg(bool),
    /// Convergence verdict, broadcast right-to-left: `true` means another
    /// iteration is needed.
    Verdict(bool),
}

/// Where a PE is inside the current iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Streaming runs both ways and relaxing against arrivals.
    Exchange,
    /// Exchange finished; participating in the changed/verdict waves.
    Wave,
}

/// One column's worth of the propagation machine.
struct PropagatePe {
    index: usize,
    n: usize,
    /// Horizontal adjacency reach: `0` for 4-connectivity, `1` for 8.
    reach: u32,
    /// This column's vertical runs, `(start_row, end_row)` inclusive,
    /// ascending.
    runs: Vec<(u32, u32)>,
    /// Current labels (the values streamed this iteration).
    labels: Vec<u32>,
    /// Next labels (relaxed against arrivals; committed at iteration end).
    next: Vec<u32>,
    phase: Phase,
    /// Next run index to send left / right (`== runs.len()` → send `Eos`).
    send_l: usize,
    send_r: usize,
    eos_sent_l: bool,
    eos_sent_r: bool,
    got_eos_l: bool,
    got_eos_r: bool,
    /// Relaxation cursors into `runs` for the left / right arrival streams
    /// (arrivals come in ascending start order, so each stream needs one).
    cur_l: usize,
    cur_r: usize,
    /// Changed flag accumulated from the left, once it arrives.
    pending_chg: Option<bool>,
    chg_sent: bool,
    /// Verdict accumulated from the right, once it arrives.
    pending_verdict: Option<bool>,
    /// Iterations this PE has completed (all PEs agree at the end).
    iterations: u64,
}

impl PropagatePe {
    fn new(index: usize, n: usize, rows: u32, reach: u32, runs: Vec<(u32, u32)>) -> Self {
        let col_base = index as u32 * rows;
        let labels: Vec<u32> = runs.iter().map(|&(s, _)| col_base + s).collect();
        PropagatePe {
            index,
            n,
            reach,
            next: labels.clone(),
            labels,
            runs,
            phase: Phase::Exchange,
            send_l: 0,
            send_r: 0,
            eos_sent_l: false,
            eos_sent_r: false,
            got_eos_l: index == 0,
            got_eos_r: index + 1 == n,
            cur_l: 0,
            cur_r: 0,
            pending_chg: None,
            chg_sent: false,
            pending_verdict: None,
            iterations: 0,
        }
    }

    /// Relaxes `next` against one arrived run, using the per-stream cursor
    /// (arrivals stream in ascending start order, so the cursor only moves
    /// forward; a run stays under the cursor while it can still reach the
    /// *next* arrival).
    fn relax(&mut self, cursor_left: bool, start: u32, end: u32, label: u32) {
        let cur = if cursor_left {
            &mut self.cur_l
        } else {
            &mut self.cur_r
        };
        let mut k = *cur;
        while k < self.runs.len() && self.runs[k].1 + self.reach < start {
            k += 1;
        }
        *cur = k;
        while k < self.runs.len() && self.runs[k].0 <= end + self.reach {
            if label < self.next[k] {
                self.next[k] = label;
            }
            k += 1;
        }
    }

    /// Handles one arrived word (`from_left` tells which link).
    fn on_msg(&mut self, from_left: bool, msg: PMsg) {
        match msg {
            PMsg::Run(s, e, l) => self.relax(from_left, s, e, l),
            PMsg::Eos => {
                if from_left {
                    self.got_eos_l = true;
                } else {
                    self.got_eos_r = true;
                }
            }
            PMsg::Chg(c) => self.pending_chg = Some(c),
            PMsg::Verdict(v) => self.pending_verdict = Some(v),
        }
    }

    /// Resets per-iteration state and re-enters [`Phase::Exchange`] (or
    /// reports the run finished when the verdict said converged).
    fn finish_iteration(&mut self, verdict: bool) -> PeStatus {
        self.iterations += 1;
        if !verdict {
            return PeStatus::Done;
        }
        self.labels.copy_from_slice(&self.next);
        self.phase = Phase::Exchange;
        self.send_l = 0;
        self.send_r = 0;
        self.eos_sent_l = false;
        self.eos_sent_r = false;
        self.got_eos_l = self.index == 0;
        self.got_eos_r = self.index + 1 == self.n;
        self.cur_l = 0;
        self.cur_r = 0;
        self.pending_chg = None;
        self.chg_sent = false;
        self.pending_verdict = None;
        PeStatus::Running
    }
}

impl crate::lockstep::PeProgram for PropagatePe {
    type Word = PMsg;

    fn tick(&mut self, io: &mut PeIo<PMsg>) -> PeStatus {
        // Drain both links every tick, whatever the phase: the link register
        // holds one word, and a neighbor further along in the handshake may
        // deliver while this PE is still streaming.
        if let Some(m) = io.recv_left() {
            self.on_msg(true, m);
        }
        if let Some(m) = io.recv_right() {
            self.on_msg(false, m);
        }
        if self.phase == Phase::Exchange {
            // Stream one run (or the Eos terminator) each way per tick.
            if self.index > 0 && !self.eos_sent_l {
                if self.send_l < self.runs.len() {
                    let (s, e) = self.runs[self.send_l];
                    io.send_left(PMsg::Run(s, e, self.labels[self.send_l]));
                    self.send_l += 1;
                } else {
                    io.send_left(PMsg::Eos);
                    self.eos_sent_l = true;
                }
            }
            if self.index + 1 < self.n && !self.eos_sent_r {
                if self.send_r < self.runs.len() {
                    let (s, e) = self.runs[self.send_r];
                    io.send_right(PMsg::Run(s, e, self.labels[self.send_r]));
                    self.send_r += 1;
                } else {
                    io.send_right(PMsg::Eos);
                    self.eos_sent_r = true;
                }
            }
            let sent_all = (self.index == 0 || self.eos_sent_l)
                && (self.index + 1 == self.n || self.eos_sent_r);
            if sent_all && self.got_eos_l && self.got_eos_r {
                self.phase = Phase::Wave;
            } else {
                return PeStatus::Running;
            }
        }
        // Wave phase. The changed flag accumulates rightward: PE 0 owns the
        // initial flag; everyone else waits for the left partial. A wave
        // word can land on a link the same tick the Exchange terminator
        // used it, so every send checks the link and retries next tick.
        let changed = self.labels != self.next;
        if !self.chg_sent {
            let upstream = if self.index == 0 {
                Some(false)
            } else {
                self.pending_chg
            };
            if let Some(up) = upstream {
                let acc = up || changed;
                if self.index + 1 < self.n {
                    if io.send_right(PMsg::Chg(acc)) {
                        self.chg_sent = true;
                    }
                } else {
                    // Rightmost PE turns the accumulated flag into the
                    // verdict and starts the leftward broadcast.
                    if self.index == 0 || io.send_left(PMsg::Verdict(acc)) {
                        return self.finish_iteration(acc);
                    }
                }
            }
        }
        if let Some(v) = self.pending_verdict {
            if self.index == 0 || io.send_left(PMsg::Verdict(v)) {
                return self.finish_iteration(v);
            }
        }
        PeStatus::Running
    }
}

/// Result of [`propagate_lockstep`].
#[derive(Clone, Debug)]
pub struct PropagateOutcome {
    /// Final per-run labels, one `Vec` per column, parallel to the input
    /// run lists. At the fixpoint each label is its component's minimum
    /// column-major position.
    pub labels: Vec<Vec<u32>>,
    /// Machine-time accounting of the whole run.
    pub report: LockstepReport,
    /// Jacobi iterations executed, including the final no-change iteration
    /// that proves convergence. Always ≥ 1.
    pub iterations: u64,
}

/// Runs iterative min-label propagation over `columns` on the lock-step
/// array — one PE per column, `columns[i]` listing column `i`'s vertical
/// runs as `(start_row, end_row)` inclusive pairs in ascending order.
///
/// `rows` is the image height (labels are column-major positions
/// `col * rows + row`); `eight` widens run adjacency to horizontal reach 1
/// (8-connectivity). `threads > 1` uses the multithreaded executor — results
/// and step counts are identical by construction.
///
/// # Panics
/// Panics if `columns` is empty, or if the iteration fails to converge
/// within the internal (diameter-based, generous) round bound — which a
/// correct input cannot trigger.
pub fn propagate_lockstep(
    columns: &[Vec<(u32, u32)>],
    rows: u32,
    eight: bool,
    threads: usize,
) -> PropagateOutcome {
    let n = columns.len();
    assert!(n > 0, "propagation machine needs at least one column");
    let reach = u32::from(eight);
    let mut pes: Vec<PropagatePe> = columns
        .iter()
        .enumerate()
        .map(|(i, runs)| PropagatePe::new(i, n, rows, reach, runs.clone()))
        .collect();
    // Round bound: iterations ≤ run-graph diameter + 2 ≤ total_runs + 2,
    // and one iteration costs ≤ (longest column stream + Eos) rounds of
    // exchange plus a full left-right-left wave.
    let total_runs: u64 = columns.iter().map(|c| c.len() as u64).sum();
    let max_col = columns.iter().map(Vec::len).max().unwrap_or(0) as u64;
    let per_iteration = max_col + 3 * n as u64 + 16;
    let max_rounds = per_iteration * (total_runs + 4) + 1_000;
    let report = if threads > 1 {
        run_lockstep_threaded(&mut pes, threads, max_rounds)
    } else {
        run_lockstep(&mut pes, max_rounds)
    };
    let iterations = pes[0].iterations;
    debug_assert!(pes.iter().all(|p| p.iterations == iterations));
    PropagateOutcome {
        labels: pes.into_iter().map(|p| p.labels).collect(),
        report,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_components_are_their_runs() {
        let cols = vec![vec![(0u32, 2u32), (5, 5)]];
        let out = propagate_lockstep(&cols, 8, false, 1);
        assert_eq!(out.labels, vec![vec![0, 5]]);
        assert_eq!(out.iterations, 1, "nothing to relax: one proving pass");
    }

    #[test]
    fn overlapping_runs_take_the_minimum_position() {
        // Two columns, runs overlapping in rows 1..=2: one component whose
        // minimum position is column 0 row 0.
        let cols = vec![vec![(0u32, 2u32)], vec![(1, 3)]];
        let out = propagate_lockstep(&cols, 4, false, 1);
        assert_eq!(out.labels, vec![vec![0], vec![0]]);
        assert_eq!(out.iterations, 2);
        assert!(out.report.rounds > 0);
    }

    #[test]
    fn diagonal_touch_merges_only_under_eight() {
        // col 0 holds row 0, col 1 holds row 1: corners touch.
        let cols = vec![vec![(0u32, 0u32)], vec![(1, 1)]];
        let four = propagate_lockstep(&cols, 2, false, 1);
        assert_eq!(four.labels, vec![vec![0], vec![3]]);
        let eight = propagate_lockstep(&cols, 2, true, 1);
        assert_eq!(eight.labels, vec![vec![0], vec![0]]);
    }

    #[test]
    fn labels_cross_the_whole_array_one_column_per_iteration() {
        // A full horizontal bar: n columns, one run each, all one component.
        // The naive propagation needs ~n iterations — the locality wall the
        // paper's pipeline avoids.
        let n = 9usize;
        let cols: Vec<Vec<(u32, u32)>> = (0..n).map(|_| vec![(0u32, 0u32)]).collect();
        let out = propagate_lockstep(&cols, 1, false, 1);
        for (c, labels) in out.labels.iter().enumerate() {
            assert_eq!(labels, &vec![0u32], "column {c}");
        }
        assert!(
            out.iterations >= n as u64 / 2,
            "{} iterations for an {n}-wide bar",
            out.iterations
        );
    }

    #[test]
    fn empty_and_ragged_columns_are_fine() {
        let cols = vec![
            vec![],
            vec![(0u32, 0u32), (2, 4), (6, 6)],
            vec![],
            vec![(3u32, 3u32)],
        ];
        let out = propagate_lockstep(&cols, 8, true, 1);
        // Column 1's three runs are mutually disconnected (column 3 is out of
        // reach of column 1); everything keeps its own position label.
        assert_eq!(out.labels[1], vec![8, 10, 14]);
        assert_eq!(out.labels[3], vec![27]);
    }

    #[test]
    fn threaded_executor_reproduces_sequential_exactly() {
        let cols: Vec<Vec<(u32, u32)>> = (0..17)
            .map(|i| {
                let mut v = Vec::new();
                if i % 3 != 0 {
                    v.push((i as u32 % 5, i as u32 % 5 + 2));
                }
                if i % 4 == 1 {
                    v.push((8, 9));
                }
                v
            })
            .collect();
        let seq = propagate_lockstep(&cols, 12, true, 1);
        for threads in [2usize, 3, 8] {
            let par = propagate_lockstep(&cols, 12, true, threads);
            assert_eq!(par.labels, seq.labels, "threads={threads}");
            assert_eq!(par.iterations, seq.iterations, "threads={threads}");
            assert_eq!(par.report, seq.report, "threads={threads}");
        }
    }
}
