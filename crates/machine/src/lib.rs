//! Scan line array processor (SLAP) simulator.
//!
//! The SLAP (Princeton/Sarnoff Engine; paper Figure 1) is a SIMD linear array
//! of `n` processing elements (PEs). Each PE has `O(n)` local memory and a
//! word-wide link to each neighbor; one word (`O(lg n)` bits) can cross each
//! link per time step. An `n × n` image enters row by row, one pixel per PE
//! per step, leaving PE `i` holding column `i`.
//!
//! The paper's complexity claims are statements about **time steps** on this
//! machine, so the simulator's job is exact step accounting, not wall-clock
//! speed. Two executors are provided, with complementary strengths:
//!
//! * [`pipeline`] — a *virtual-time* executor for one-directional pipeline
//!   programs (the shape of `Union-Find-Pass` and `Label-Pass`). PEs run to
//!   completion in array order while explicit per-PE clocks and message
//!   timestamps reproduce exactly the timing a cycle-by-cycle run would give:
//!   a dequeue can happen no earlier than one step after the matching
//!   enqueue, local work advances the local clock, and waiting on an empty
//!   queue accrues idle time (optionally spent on useful work via an idle
//!   hook — the paper's "compress while waiting" idea).
//! * [`lockstep`] — a cycle-by-cycle executor for arbitrary two-directional
//!   PE programs, with both a sequential runner and a multithreaded runner
//!   (contiguous PE blocks per worker, custom sense-reversing [`barrier`]
//!   between rounds). Used by the iterative baselines and to cross-validate
//!   the virtual-time accounting.
//!
//! [`costs`] centralizes the unit-cost constants so the two executors and
//! all algorithm crates charge identical prices.
//!
//! Entry points: [`pipeline::run_pipeline_pooled`] (virtual-time, the hot
//! path `slap_cc` drives), [`lockstep::run_lockstep`] /
//! [`lockstep::run_lockstep_threaded`] (cycle-accurate), and
//! [`trace`]/[`report`] for rendering what a run did (`slap trace` uses
//! [`render_gantt`]).

#![warn(missing_docs)]

pub mod barrier;
pub mod costs;
pub mod lockstep;
pub mod pipeline;
pub mod propagate;
pub mod report;
pub mod trace;

pub use lockstep::{
    run_lockstep, run_lockstep_threaded, LockstepReport, PeIo, PeProgram, PeStatus,
};
pub use pipeline::{
    run_pipeline, run_pipeline_pooled, run_pipeline_traced, run_pipeline_with, PeCtx,
    PipelineBuffers, PipelineConfig,
};
pub use propagate::{propagate_lockstep, PropagateOutcome};
pub use report::{PeStats, PipelineReport};
pub use trace::{render_gantt, span_totals, Span, SpanKind};
