//! Cycle-by-cycle (lock-step) execution of PE programs.
//!
//! The SIMD SLAP advances all PEs one instruction per time step, and each
//! link carries at most one word per step in each direction. This executor
//! models exactly that: every live PE gets one [`tick`](PeProgram::tick) per
//! round, may consume the word that arrived on each link and may send one
//! word each way; words sent in round `t` are visible to the neighbor in
//! round `t+1`. An unconsumed word stays in the PE's link register until the
//! next arrival overwrites it (registers, not queues — programs that need
//! queues build them in local memory, as the paper's algorithms do).
//!
//! Two runners share these semantics bit-for-bit:
//!
//! * [`run_lockstep`] — sequential, the reference;
//! * [`run_lockstep_threaded`] — contiguous PE blocks per worker, one
//!   [`SpinBarrier`](crate::barrier::SpinBarrier#) wait per round, parity
//!   double-buffered mailboxes (lock-free `HaloCell`s over raw
//!   `std::sync::atomic`). Results are deterministic and identical to the
//!   sequential runner; only wall-clock time differs. This is the experiment
//!   E11 subject.

use crate::barrier::{Sense, SpinBarrier};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A lock-free single-producer/single-consumer mailbox for one halo word.
///
/// Each boundary cell is written by exactly one worker (during its tick
/// phase) and drained by exactly one neighbor (during its merge phase), and
/// the two phases of a round are separated by the executor's barrier waits,
/// so a store and the matching take never run concurrently. The `full` flag
/// still carries its own release/acquire edge for the payload, making the
/// cell self-contained rather than dependent on the barrier for payload
/// visibility. Unlike the earlier mutex-backed `crossbeam::AtomicCell` stub,
/// nothing here blocks or allocates, so threaded-executor wall-clock numbers
/// measure the simulation, not lock traffic.
struct HaloCell<W> {
    full: AtomicBool,
    slot: UnsafeCell<Option<W>>,
}

// SAFETY: the protocol above guarantees single-writer/single-reader accesses
// ordered by `full` (release store in `store`, acquire swap in `take`) and by
// the round barrier, so sharing across threads is sound for any Send payload.
unsafe impl<W: Send> Sync for HaloCell<W> {}

impl<W: Copy + Send> HaloCell<W> {
    fn new() -> Self {
        HaloCell {
            full: AtomicBool::new(false),
            slot: UnsafeCell::new(None),
        }
    }

    /// Publishes `w`, overwriting any unconsumed word (link-register
    /// semantics, like the sequential runner's `next_from_*` slots).
    fn store(&self, w: W) {
        // SAFETY: only the owning worker writes this cell, and the reader's
        // take of any previous value happened before the barrier of an
        // earlier round.
        unsafe { *self.slot.get() = Some(w) };
        self.full.store(true, Ordering::Release);
    }

    /// Drains the cell, if a word was published this round.
    fn take(&self) -> Option<W> {
        if self.full.swap(false, Ordering::Acquire) {
            // SAFETY: `full` was set, so the matching `store`'s release store
            // happens-before this read; the writer will not touch the slot
            // again until after the next round barrier.
            unsafe { (*self.slot.get()).take() }
        } else {
            None
        }
    }
}

/// Result of one tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeStatus {
    /// The program wants more ticks.
    Running,
    /// The program is finished; it will not be ticked again and words
    /// arriving later are dropped.
    Done,
}

/// Per-tick I/O window: at most one word consumed and one sent per link.
pub struct PeIo<W> {
    from_left: Option<W>,
    from_right: Option<W>,
    to_left: Option<W>,
    to_right: Option<W>,
}

impl<W: Copy> PeIo<W> {
    /// Consumes the word in the left link register, if any.
    pub fn recv_left(&mut self) -> Option<W> {
        self.from_left.take()
    }

    /// Consumes the word in the right link register, if any.
    pub fn recv_right(&mut self) -> Option<W> {
        self.from_right.take()
    }

    /// Peeks at the left link register without consuming.
    pub fn peek_left(&self) -> Option<W> {
        self.from_left
    }

    /// Peeks at the right link register without consuming.
    pub fn peek_right(&self) -> Option<W> {
        self.from_right
    }

    /// Sends one word leftward this round. Returns `false` (and sends
    /// nothing) if the left link was already used this round.
    pub fn send_left(&mut self, w: W) -> bool {
        if self.to_left.is_some() {
            return false;
        }
        self.to_left = Some(w);
        true
    }

    /// Sends one word rightward this round. Returns `false` (and sends
    /// nothing) if the right link was already used this round.
    pub fn send_right(&mut self, w: W) -> bool {
        if self.to_right.is_some() {
            return false;
        }
        self.to_right = Some(w);
        true
    }
}

/// A PE program for the lock-step machine. One `tick` is one SIMD time step.
pub trait PeProgram: Send {
    /// The link word type (`O(lg n)` bits on the real machine).
    type Word: Copy + Send;

    /// Executes one time step.
    fn tick(&mut self, io: &mut PeIo<Self::Word>) -> PeStatus;
}

/// Accounting from a lock-step run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockstepReport {
    /// Rounds until every PE reported [`PeStatus::Done`]. This is the
    /// machine time of the program.
    pub rounds: u64,
    /// Total ticks executed over all PEs (≤ `rounds * n`; Done PEs stop).
    pub ticks: u64,
}

/// Runs the programs sequentially until all are done.
///
/// # Panics
/// Panics if any program is still running after `max_rounds` rounds.
pub fn run_lockstep<P: PeProgram>(programs: &mut [P], max_rounds: u64) -> LockstepReport {
    let n = programs.len();
    assert!(n > 0, "lock-step machine needs at least one PE");
    let mut reg_from_left: Vec<Option<P::Word>> = (0..n).map(|_| None).collect();
    let mut reg_from_right: Vec<Option<P::Word>> = (0..n).map(|_| None).collect();
    let mut next_from_left: Vec<Option<P::Word>> = (0..n).map(|_| None).collect();
    let mut next_from_right: Vec<Option<P::Word>> = (0..n).map(|_| None).collect();
    let mut done = vec![false; n];
    let mut active = n;
    let mut rounds = 0u64;
    let mut ticks = 0u64;
    while active > 0 {
        assert!(
            rounds < max_rounds,
            "lock-step run exceeded {max_rounds} rounds with {active} PEs running"
        );
        for i in 0..n {
            if done[i] {
                continue;
            }
            let mut io = PeIo {
                from_left: reg_from_left[i].take(),
                from_right: reg_from_right[i].take(),
                to_left: None,
                to_right: None,
            };
            let status = programs[i].tick(&mut io);
            ticks += 1;
            // unconsumed words stay in the link registers
            reg_from_left[i] = io.from_left;
            reg_from_right[i] = io.from_right;
            if let Some(w) = io.to_right {
                if i + 1 < n {
                    next_from_left[i + 1] = Some(w);
                }
            }
            if let Some(w) = io.to_left {
                if i > 0 {
                    next_from_right[i - 1] = Some(w);
                }
            }
            if status == PeStatus::Done {
                done[i] = true;
                active -= 1;
            }
        }
        for i in 0..n {
            if let Some(w) = next_from_left[i].take() {
                reg_from_left[i] = Some(w); // new arrival overwrites leftovers
            }
            if let Some(w) = next_from_right[i].take() {
                reg_from_right[i] = Some(w);
            }
        }
        rounds += 1;
    }
    LockstepReport { rounds, ticks }
}

/// Runs the programs across `threads` workers (contiguous PE blocks) with
/// identical semantics — and therefore identical results — to
/// [`run_lockstep`].
///
/// Messages between PEs of the same block stay in worker-local buffers; only
/// the two block-boundary links per worker cross threads, through
/// parity-double-buffered *halo* cells (the classic halo-exchange pattern),
/// so per-round shared-memory traffic is `O(threads)`, not `O(n)`. One
/// barrier per round separates the halo writes from the reads.
///
/// # Panics
/// Panics if any program is still running after `max_rounds` rounds, or if
/// `threads == 0`.
pub fn run_lockstep_threaded<P: PeProgram>(
    programs: &mut [P],
    threads: usize,
    max_rounds: u64,
) -> LockstepReport {
    let n = programs.len();
    assert!(n > 0, "lock-step machine needs at least one PE");
    assert!(threads > 0, "need at least one worker");
    let threads = threads.min(n);
    if threads == 1 {
        return run_lockstep(programs, max_rounds);
    }
    // halo[parity][t] = word crossing worker t's boundary this round:
    // `right_out[t]` is what block t's last PE sent right (read by t+1);
    // `left_out[t]` is what block t's first PE sent left (read by t-1).
    let mk = |len: usize| -> Vec<HaloCell<P::Word>> { (0..len).map(|_| HaloCell::new()).collect() };
    let halo_right_out: [Vec<HaloCell<P::Word>>; 2] = [mk(threads), mk(threads)];
    let halo_left_out: [Vec<HaloCell<P::Word>>; 2] = [mk(threads), mk(threads)];
    let barrier = SpinBarrier::new(threads);
    let active = AtomicUsize::new(n);
    let poisoned = AtomicBool::new(false);
    let total_ticks = AtomicU64::new(0);
    let total_rounds = AtomicU64::new(0);
    let chunk = n.div_ceil(threads);

    std::thread::scope(|scope| {
        let mut rest = &mut programs[..];
        let mut lo = 0usize;
        for t in 0..threads {
            let hi = ((t + 1) * chunk).min(n);
            let (mine, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let halo_right_out = &halo_right_out;
            let halo_left_out = &halo_left_out;
            let barrier = &barrier;
            let active = &active;
            let poisoned = &poisoned;
            let total_ticks = &total_ticks;
            let total_rounds = &total_rounds;
            scope.spawn(move || {
                let m = mine.len();
                let mut reg_from_left: Vec<Option<P::Word>> = (0..m).map(|_| None).collect();
                let mut reg_from_right: Vec<Option<P::Word>> = (0..m).map(|_| None).collect();
                let mut next_from_left: Vec<Option<P::Word>> = (0..m).map(|_| None).collect();
                let mut next_from_right: Vec<Option<P::Word>> = (0..m).map(|_| None).collect();
                let mut done = vec![false; m];
                let mut sense = Sense::default();
                let mut my_ticks = 0u64;
                let mut rounds = 0u64;
                loop {
                    // Every worker holds the same `rounds`, so an overrun
                    // panics in all of them at once (no one is left at the
                    // barrier).
                    assert!(
                        rounds < max_rounds,
                        "lock-step run exceeded {max_rounds} rounds"
                    );
                    let buf = (rounds % 2) as usize;
                    // Tick this worker's block. A panicking program must not
                    // strand the other workers at the barrier, so catch it,
                    // finish the round's synchronization, then re-raise.
                    let tick_result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut newly_done = 0usize;
                            for j in 0..m {
                                if done[j] {
                                    continue;
                                }
                                let mut io = PeIo {
                                    from_left: reg_from_left[j].take(),
                                    from_right: reg_from_right[j].take(),
                                    to_left: None,
                                    to_right: None,
                                };
                                let status = mine[j].tick(&mut io);
                                my_ticks += 1;
                                reg_from_left[j] = io.from_left;
                                reg_from_right[j] = io.from_right;
                                if let Some(w) = io.to_right {
                                    if j + 1 < m {
                                        next_from_left[j + 1] = Some(w);
                                    } else if lo + m < n {
                                        halo_right_out[buf][t].store(w);
                                    }
                                }
                                if let Some(w) = io.to_left {
                                    if j > 0 {
                                        next_from_right[j - 1] = Some(w);
                                    } else if lo > 0 {
                                        halo_left_out[buf][t].store(w);
                                    }
                                }
                                if status == PeStatus::Done {
                                    done[j] = true;
                                    newly_done += 1;
                                }
                            }
                            newly_done
                        }));
                    match &tick_result {
                        Ok(newly_done) => {
                            if *newly_done > 0 {
                                active.fetch_sub(*newly_done, Ordering::AcqRel);
                            }
                        }
                        Err(_) => poisoned.store(true, Ordering::Release),
                    }
                    // Exit consensus needs two barriers: after the first, all
                    // of this round's `active` decrements (and poison flags)
                    // are published and no worker has started the next round;
                    // every worker then samples the same state, and the
                    // second barrier keeps any worker from racing ahead into
                    // next-round decrements before the others have sampled.
                    // (With a single barrier, a fast worker's next-round
                    // decrement could drop `active` to zero between a slow
                    // worker's barrier exit and its load — the slow worker
                    // would break one round early and strand everyone else.)
                    barrier.wait(&mut sense);
                    let finished = active.load(Ordering::Acquire) == 0;
                    let poisoned_now = poisoned.load(Ordering::Acquire);
                    barrier.wait(&mut sense);
                    if let Err(payload) = tick_result {
                        std::panic::resume_unwind(payload);
                    }
                    if poisoned_now {
                        panic!("a peer lock-step worker panicked in round {rounds}");
                    }
                    // merge this round's arrivals: local buffers + halos
                    for j in 0..m {
                        if let Some(w) = next_from_left[j].take() {
                            reg_from_left[j] = Some(w);
                        }
                        if let Some(w) = next_from_right[j].take() {
                            reg_from_right[j] = Some(w);
                        }
                    }
                    if t > 0 {
                        if let Some(w) = halo_right_out[buf][t - 1].take() {
                            reg_from_left[0] = Some(w);
                        }
                    }
                    if t + 1 < threads {
                        if let Some(w) = halo_left_out[buf][t + 1].take() {
                            reg_from_right[m - 1] = Some(w);
                        }
                    }
                    rounds += 1;
                    if finished {
                        break;
                    }
                }
                total_ticks.fetch_add(my_ticks, Ordering::Relaxed);
                total_rounds.fetch_max(rounds, Ordering::Relaxed);
            });
            lo = hi;
        }
    });
    LockstepReport {
        rounds: total_rounds.load(Ordering::Relaxed),
        ticks: total_ticks.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token ring: PE 0 emits a token that each PE increments and forwards;
    /// the last PE keeps the result. Everything else just relays.
    struct Relay {
        index: usize,
        n: usize,
        state: RelayState,
        result: u64,
    }

    enum RelayState {
        Emit,
        WaitToken,
        Forward(u64),
        Finished,
    }

    impl PeProgram for Relay {
        type Word = u64;
        fn tick(&mut self, io: &mut PeIo<u64>) -> PeStatus {
            match self.state {
                RelayState::Emit => {
                    assert!(io.send_right(1));
                    self.state = RelayState::Finished;
                    PeStatus::Done
                }
                RelayState::WaitToken => {
                    if let Some(w) = io.recv_left() {
                        if self.index + 1 == self.n {
                            self.result = w + 1;
                            self.state = RelayState::Finished;
                            return PeStatus::Done;
                        }
                        self.state = RelayState::Forward(w + 1);
                    }
                    PeStatus::Running
                }
                RelayState::Forward(w) => {
                    assert!(io.send_right(w));
                    self.state = RelayState::Finished;
                    PeStatus::Done
                }
                RelayState::Finished => PeStatus::Done,
            }
        }
    }

    fn ring(n: usize) -> Vec<Relay> {
        (0..n)
            .map(|i| Relay {
                index: i,
                n,
                state: if i == 0 {
                    RelayState::Emit
                } else {
                    RelayState::WaitToken
                },
                result: 0,
            })
            .collect()
    }

    #[test]
    fn halo_cell_store_take_roundtrip() {
        let c: HaloCell<u64> = HaloCell::new();
        assert_eq!(c.take(), None);
        c.store(7);
        assert_eq!(c.take(), Some(7));
        assert_eq!(c.take(), None, "take drains the cell");
        c.store(1);
        c.store(2);
        assert_eq!(c.take(), Some(2), "newer word overwrites unread word");
    }

    #[test]
    fn halo_cell_crosses_threads() {
        // Ping-pong a counter through two cells with the same
        // write-then-read-next-phase discipline the executor uses.
        let a: HaloCell<u64> = HaloCell::new();
        let b: HaloCell<u64> = HaloCell::new();
        let barrier = SpinBarrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut sense = Sense::default();
                for i in 0..100u64 {
                    a.store(i);
                    barrier.wait(&mut sense);
                    barrier.wait(&mut sense);
                    assert_eq!(b.take(), Some(i + 1));
                }
            });
            scope.spawn(|| {
                let mut sense = Sense::default();
                for i in 0..100u64 {
                    barrier.wait(&mut sense);
                    let got = a.take().expect("word published before the barrier");
                    assert_eq!(got, i);
                    b.store(got + 1);
                    barrier.wait(&mut sense);
                }
            });
        });
    }

    #[test]
    fn token_travels_the_array() {
        let n = 16;
        let mut pes = ring(n);
        let report = run_lockstep(&mut pes, 10_000);
        assert_eq!(pes[n - 1].result, n as u64);
        // one hop per 2 rounds (receive round + forward round), ~2n rounds
        assert!(report.rounds >= n as u64);
        assert!(report.rounds <= 3 * n as u64);
    }

    #[test]
    fn threaded_matches_sequential() {
        for threads in [2, 3, 5, 8] {
            let n = 33;
            let mut seq = ring(n);
            let seq_report = run_lockstep(&mut seq, 10_000);
            let mut par = ring(n);
            let par_report = run_lockstep_threaded(&mut par, threads, 10_000);
            assert_eq!(par[n - 1].result, seq[n - 1].result, "threads={threads}");
            assert_eq!(par_report.rounds, seq_report.rounds, "threads={threads}");
            assert_eq!(par_report.ticks, seq_report.ticks, "threads={threads}");
        }
    }

    #[test]
    fn one_thread_delegates_to_sequential() {
        let n = 5;
        let mut pes = ring(n);
        let report = run_lockstep_threaded(&mut pes, 1, 10_000);
        assert_eq!(pes[n - 1].result, n as u64);
        assert!(report.rounds > 0);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_program_is_caught() {
        struct Forever;
        impl PeProgram for Forever {
            type Word = u64;
            fn tick(&mut self, _io: &mut PeIo<u64>) -> PeStatus {
                PeStatus::Running
            }
        }
        let mut pes = vec![Forever, Forever];
        run_lockstep(&mut pes, 100);
    }

    #[test]
    fn workers_finishing_in_staggered_rounds_all_exit() {
        // Regression test for the exit-consensus race: block 0's PEs finish
        // immediately while block 1's PE keeps running for many rounds, so a
        // worker sampling `active` at the wrong moment would break out of the
        // round loop early and strand its peer at the barrier forever.
        struct CountDown {
            left: u64,
        }
        impl PeProgram for CountDown {
            type Word = u64;
            fn tick(&mut self, _io: &mut PeIo<u64>) -> PeStatus {
                if self.left == 0 {
                    PeStatus::Done
                } else {
                    self.left -= 1;
                    PeStatus::Running
                }
            }
        }
        for _ in 0..50 {
            let mut pes = vec![
                CountDown { left: 0 },
                CountDown { left: 0 },
                CountDown { left: 500 },
                CountDown { left: 501 },
            ];
            let report = run_lockstep_threaded(&mut pes, 2, 10_000);
            assert_eq!(report.rounds, 502);
        }
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn panicking_program_does_not_strand_other_workers() {
        // Regression test for panic poisoning: without it, the panicking
        // worker unwinds while its peer parks at the barrier forever and the
        // test would hang rather than fail.
        struct Bomb {
            fuse: u64,
            armed: bool,
        }
        impl PeProgram for Bomb {
            type Word = u64;
            fn tick(&mut self, _io: &mut PeIo<u64>) -> PeStatus {
                if self.armed && self.fuse == 0 {
                    panic!("boom");
                }
                self.fuse = self.fuse.saturating_sub(1);
                PeStatus::Running
            }
        }
        let mut pes = vec![
            Bomb {
                fuse: 10,
                armed: true,
            },
            Bomb {
                fuse: 1_000_000,
                armed: false,
            },
        ];
        run_lockstep_threaded(&mut pes, 2, 2_000_000);
    }

    #[test]
    fn link_register_overwrites_unread_word() {
        // PE 0 sends two words back to back; PE 1 never reads until round 3,
        // so only the second word must remain.
        struct Sender {
            sent: usize,
        }
        impl PeProgram for Sender {
            type Word = u64;
            fn tick(&mut self, io: &mut PeIo<u64>) -> PeStatus {
                if self.sent < 2 {
                    assert!(io.send_right(self.sent as u64 + 10));
                    self.sent += 1;
                    if self.sent == 2 {
                        return PeStatus::Done;
                    }
                }
                PeStatus::Running
            }
        }
        struct LateReader {
            waited: usize,
            got: Option<u64>,
        }
        impl PeProgram for LateReader {
            type Word = u64;
            fn tick(&mut self, io: &mut PeIo<u64>) -> PeStatus {
                self.waited += 1;
                if self.waited < 4 {
                    return PeStatus::Running;
                }
                self.got = io.recv_left();
                PeStatus::Done
            }
        }
        enum Either {
            S(Sender),
            R(LateReader),
        }
        impl PeProgram for Either {
            type Word = u64;
            fn tick(&mut self, io: &mut PeIo<u64>) -> PeStatus {
                match self {
                    Either::S(s) => s.tick(io),
                    Either::R(r) => r.tick(io),
                }
            }
        }
        let mut pes = vec![
            Either::S(Sender { sent: 0 }),
            Either::R(LateReader {
                waited: 0,
                got: None,
            }),
        ];
        run_lockstep(&mut pes, 100);
        match &pes[1] {
            Either::R(r) => assert_eq!(r.got, Some(11), "register should hold newest word"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn send_twice_in_one_round_is_rejected() {
        struct DoubleSend {
            done: bool,
            second_send_ok: Option<bool>,
        }
        impl PeProgram for DoubleSend {
            type Word = u64;
            fn tick(&mut self, io: &mut PeIo<u64>) -> PeStatus {
                if !self.done {
                    assert!(io.send_right(1));
                    self.second_send_ok = Some(io.send_right(2));
                    self.done = true;
                }
                PeStatus::Done
            }
        }
        let mut pes = vec![
            DoubleSend {
                done: false,
                second_send_ok: None,
            },
            DoubleSend {
                done: false,
                second_send_ok: None,
            },
        ];
        run_lockstep(&mut pes, 10);
        assert_eq!(pes[0].second_send_ok, Some(false));
    }
}
