//! Space–time traces of pipeline passes and an ASCII Gantt renderer.
//!
//! The virtual-time executor can record, per PE, the exact intervals spent
//! computing, blocked on an empty queue, and driving the link. Rendering
//! them as a space–time diagram (PEs down, time across) makes the paper's
//! pipelining arguments visible: Lemma 1's diagonal wavefront, the idle
//! wedge ahead of it that the §3 idle-compression variant harvests, and the
//! send bursts of the Figure 3(b) comb.

use serde::{Deserialize, Serialize};

/// What a PE was doing during a [`Span`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Local computation (union–find work, loop bookkeeping).
    Busy,
    /// Blocked on an empty incoming queue (real machine time; the idle
    /// compression variant spends it on path compression).
    Idle,
    /// Driving the link (one word per `word_steps`).
    Send,
}

impl SpanKind {
    /// The glyph used by [`render_gantt`].
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Busy => '#',
            SpanKind::Idle => '.',
            SpanKind::Send => '>',
        }
    }
}

/// One half-open interval `[start, end)` of a PE's clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Start clock (inclusive).
    pub start: u64,
    /// End clock (exclusive).
    pub end: u64,
    /// Activity during the interval.
    pub kind: SpanKind,
}

impl Span {
    /// Interval length in steps.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` for degenerate zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Appends a span to `spans`, merging with the previous one when contiguous
/// and of the same kind (keeps traces linear in the number of activity
/// *changes*, not in steps).
pub fn push_span(spans: &mut Vec<Span>, kind: SpanKind, start: u64, end: u64) {
    if start == end {
        return;
    }
    debug_assert!(start < end, "span runs backwards");
    if let Some(last) = spans.last_mut() {
        debug_assert!(last.end <= start, "spans out of order");
        if last.kind == kind && last.end == start {
            last.end = end;
            return;
        }
    }
    spans.push(Span { start, end, kind });
}

/// Renders per-PE traces as an ASCII space–time diagram, one row per PE,
/// `width` time bins across. Each bin shows the activity that covered most
/// of it (`#` busy, `.` idle, `>` send, space for "finished / not started").
///
/// Returns an empty string for empty traces.
pub fn render_gantt(traces: &[Vec<Span>], width: usize) -> String {
    let t_max = traces
        .iter()
        .flat_map(|t| t.last())
        .map(|s| s.end)
        .max()
        .unwrap_or(0);
    if t_max == 0 || width == 0 {
        return String::new();
    }
    let width = width.min(t_max as usize);
    let bin = (t_max as f64) / (width as f64);
    let mut out = String::new();
    out.push_str(&format!(
        "time 0..{t_max} steps, {width} bins of {bin:.1} steps ('#' busy, '.' idle, '>' send)\n"
    ));
    let label_w = traces.len().saturating_sub(1).to_string().len().max(2);
    for (pe, spans) in traces.iter().enumerate() {
        out.push_str(&format!("PE {pe:>label_w$} |"));
        let mut cursor = 0usize; // index into spans
        for b in 0..width {
            let lo = (b as f64 * bin) as u64;
            let hi = (((b + 1) as f64) * bin).ceil() as u64;
            // advance to the first span ending after lo
            while cursor < spans.len() && spans[cursor].end <= lo {
                cursor += 1;
            }
            let mut best: Option<(u64, SpanKind)> = None;
            let mut i = cursor;
            while i < spans.len() && spans[i].start < hi {
                let overlap = spans[i].end.min(hi).saturating_sub(spans[i].start.max(lo));
                if overlap > 0 && best.is_none_or(|(b_ov, _)| overlap > b_ov) {
                    best = Some((overlap, spans[i].kind));
                }
                i += 1;
            }
            out.push(best.map_or(' ', |(_, k)| k.glyph()));
        }
        out.push_str("|\n");
    }
    out
}

/// Summary ratios of one PE trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanTotals {
    /// Steps spent computing.
    pub busy: u64,
    /// Steps spent blocked.
    pub idle: u64,
    /// Steps spent sending.
    pub send: u64,
}

/// Sums the step totals of a trace by kind.
pub fn span_totals(spans: &[Span]) -> SpanTotals {
    let mut t = SpanTotals::default();
    for s in spans {
        match s.kind {
            SpanKind::Busy => t.busy += s.len(),
            SpanKind::Idle => t.idle += s.len(),
            SpanKind::Send => t.send += s.len(),
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_span_merges_contiguous_same_kind() {
        let mut v = Vec::new();
        push_span(&mut v, SpanKind::Busy, 0, 5);
        push_span(&mut v, SpanKind::Busy, 5, 9);
        push_span(&mut v, SpanKind::Idle, 9, 12);
        push_span(&mut v, SpanKind::Busy, 12, 13);
        assert_eq!(v.len(), 3);
        assert_eq!(
            v[0],
            Span {
                start: 0,
                end: 9,
                kind: SpanKind::Busy
            }
        );
    }

    #[test]
    fn push_span_drops_empty_intervals() {
        let mut v = Vec::new();
        push_span(&mut v, SpanKind::Idle, 4, 4);
        assert!(v.is_empty());
    }

    #[test]
    fn totals_sum_by_kind() {
        let spans = vec![
            Span {
                start: 0,
                end: 4,
                kind: SpanKind::Busy,
            },
            Span {
                start: 4,
                end: 6,
                kind: SpanKind::Send,
            },
            Span {
                start: 6,
                end: 16,
                kind: SpanKind::Idle,
            },
        ];
        let t = span_totals(&spans);
        assert_eq!((t.busy, t.send, t.idle), (4, 2, 10));
    }

    #[test]
    fn gantt_renders_one_row_per_pe() {
        let traces = vec![
            vec![Span {
                start: 0,
                end: 10,
                kind: SpanKind::Busy,
            }],
            vec![
                Span {
                    start: 0,
                    end: 5,
                    kind: SpanKind::Idle,
                },
                Span {
                    start: 5,
                    end: 10,
                    kind: SpanKind::Busy,
                },
            ],
        ];
        let g = render_gantt(&traces, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 PEs
        assert!(lines[1].contains("##########"));
        assert!(lines[2].contains("....."));
        assert!(lines[2].contains("#####"));
    }

    #[test]
    fn gantt_handles_empty_traces() {
        assert_eq!(render_gantt(&[], 40), "");
        assert_eq!(render_gantt(&[vec![]], 40), "");
    }

    #[test]
    fn gantt_bins_pick_dominant_activity() {
        // one bin of width 10 covering 7 busy + 3 idle -> '#'
        let traces = vec![vec![
            Span {
                start: 0,
                end: 7,
                kind: SpanKind::Busy,
            },
            Span {
                start: 7,
                end: 10,
                kind: SpanKind::Idle,
            },
        ]];
        let g = render_gantt(&traces, 1);
        assert!(g.lines().nth(1).unwrap().contains('#'));
    }
}
