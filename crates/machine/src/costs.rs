//! Unit-cost constants shared by every executor and algorithm crate.
//!
//! One **unit** is one RAM operation inside a PE. The paper never fixes the
//! constants (its bounds are asymptotic); what matters for reproducing the
//! *shapes* is that every algorithm is charged with the same ruler. Changing
//! a constant rescales every curve without reordering them.

/// Cost of one dequeue from the incoming link queue (paper Fig. 5 line 10).
pub const DEQUEUE: u64 = 1;

/// Cost of one enqueue onto the outgoing link queue (paper Fig. 5 line 5).
pub const ENQUEUE: u64 = 1;

/// Steps between an enqueue completing at PE `i` and the word becoming
/// dequeuable at PE `i+1` ("only a constant amount of time must pass after
/// each enqueue until the corresponding dequeue in the next processor").
pub const LINK_LATENCY: u64 = 1;

/// Steps to move one message across a word-wide link (the standard SLAP).
pub const WORD_STEPS: u64 = 1;

/// Steps to move one `bits`-bit message across the restricted 1-bit link of
/// Theorem 5. The paper's messages are row indices and labels, i.e.
/// `O(lg n)`-bit words; serializing one costs `bits` steps.
pub const fn bit_serial_steps(bits: u32) -> u64 {
    bits as u64
}

/// Number of bits in a message carrying values up to `max_value` inclusive
/// (at least 1).
pub fn bits_for(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

/// Steps charged for the image input phase: `rows` steps to stream the image
/// through (one row per step), plus 2 transfers per row so each PE also
/// captures its neighbors' column bits (needed to maintain the paper's
/// `adjnext`/`adjprev` with purely local work).
pub fn load_steps(rows: usize) -> u64 {
    3 * rows as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_covers_powers_of_two() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn bit_serial_matches_width() {
        assert_eq!(bit_serial_steps(10), 10);
        assert_eq!(bit_serial_steps(bits_for(1023)), 10);
    }

    #[test]
    fn load_is_linear_in_rows() {
        assert_eq!(load_steps(128), 384);
    }
}
