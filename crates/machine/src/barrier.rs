//! A hybrid sense-reversing barrier: bounded spinning, then blocking.
//!
//! The lock-step executor synchronizes its workers once per simulated round.
//! Rounds are short (a handful of ticks per PE), so when every worker has a
//! core the fast path matters — the classic sense-reversing centralized
//! barrier (one atomic counter plus a phase flag, each thread flipping a
//! thread-local *sense* per round; see Mara Bos, *Rust Atomics and Locks*,
//! ch. 9–10 for the construction style). But simulators often run
//! oversubscribed (more workers than cores, or alongside builds); pure
//! spinning then burns scheduler quanta waiting for a thread that isn't
//! running. After a bounded spin the barrier therefore falls back to a
//! `parking_lot` mutex + condvar sleep, woken by the last arriver.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Spin iterations before a waiter gives up and blocks. Roughly tens of
/// microseconds: longer than a healthy round gap, far shorter than a
/// scheduler quantum.
const SPIN_LIMIT: u32 = 8_192;

/// A reusable barrier for a fixed set of `n` participants.
///
/// Each participant owns a [`Sense`] token and calls
/// [`wait`](SpinBarrier::wait) with it once per phase. The last arriver
/// releases everyone by flipping the shared phase flag (and waking any
/// blocked waiters).
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    phase: AtomicBool,
    lock: Mutex<()>,
    cvar: Condvar,
}

/// Thread-local sense token; create one per participating thread.
#[derive(Debug, Default)]
pub struct Sense(bool);

impl SpinBarrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            phase: AtomicBool::new(false),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `wait` this phase.
    ///
    /// The release store on the phase flip combined with the acquire loads in
    /// the waiters makes every write before the barrier visible after it —
    /// the happens-before edge every lock-step round depends on.
    pub fn wait(&self, sense: &mut Sense) {
        sense.0 = !sense.0;
        let target = sense.0;
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.count.store(0, Ordering::Relaxed);
            // Take the lock before flipping so a waiter cannot check the
            // phase, decide to sleep, and miss the notify in between.
            let guard = self.lock.lock();
            self.phase.store(target, Ordering::Release);
            drop(guard);
            self.cvar.notify_all();
        } else {
            let mut spins = 0u32;
            while self.phase.load(Ordering::Acquire) != target {
                if spins < SPIN_LIMIT {
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                } else {
                    let mut guard = self.lock.lock();
                    if self.phase.load(Ordering::Acquire) != target {
                        self.cvar.wait(&mut guard);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        let mut s = Sense::default();
        for _ in 0..100 {
            b.wait(&mut s);
        }
    }

    #[test]
    fn rounds_stay_in_lockstep() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(THREADS);
        let counters: Vec<AtomicU64> = (0..ROUNDS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let mut sense = Sense::default();
                    for (r, counter) in counters.iter().enumerate() {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        // after the barrier, every thread must have bumped
                        // this round's counter
                        assert_eq!(
                            counter.load(Ordering::Relaxed),
                            THREADS as u64,
                            "round {r} released early"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn writes_before_barrier_visible_after() {
        const THREADS: usize = 3;
        let barrier = SpinBarrier::new(THREADS);
        let slots: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let slots = &slots;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut sense = Sense::default();
                    for round in 1..50u64 {
                        slots[t].store(round, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        for s in slots {
                            assert!(s.load(Ordering::Relaxed) >= round);
                        }
                        barrier.wait(&mut sense);
                    }
                });
            }
        });
    }

    #[test]
    fn blocking_path_wakes_up() {
        // Force the slow path: one thread arrives late (after the waiter has
        // certainly exhausted its spin budget).
        let barrier = SpinBarrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut sense = Sense::default();
                barrier.wait(&mut sense); // will spin out and block
            });
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let mut sense = Sense::default();
                barrier.wait(&mut sense);
            });
        });
    }

    #[test]
    fn heavily_oversubscribed_still_correct() {
        // more threads than this box has cores: the blocking fallback keeps
        // the rounds correct (and the test fast enough to run anywhere)
        const THREADS: usize = 16;
        const ROUNDS: usize = 50;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let mut sense = Sense::default();
                    for r in 1..=ROUNDS as u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        assert!(counter.load(Ordering::Relaxed) >= r * THREADS as u64);
                        barrier.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ROUNDS) as u64);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        SpinBarrier::new(0);
    }
}
