//! Step-accounting reports produced by the executors.

use serde::{Deserialize, Serialize};

/// Per-PE accounting from one pipeline pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeStats {
    /// Local clock when the PE finished the pass (after its EOS enqueue).
    pub finish: u64,
    /// Units of real work charged.
    pub busy: u64,
    /// Steps spent blocked on an empty incoming queue.
    pub idle: u64,
    /// Of the idle steps, how many were filled with useful work by an idle
    /// hook (e.g. path compression while waiting).
    pub idle_used: u64,
    /// Messages sent to the next PE (excluding EOS).
    pub sent: u64,
    /// Messages received (excluding EOS).
    pub received: u64,
    /// Largest number of ready-but-unconsumed messages observed in the
    /// incoming queue (a memory-pressure indicator).
    pub max_queue: u64,
}

/// Whole-pass accounting from the virtual-time pipeline executor.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Per-PE statistics in array order.
    pub per_pe: Vec<PeStats>,
    /// Completion time of the pass: `max` of per-PE finish clocks.
    pub makespan: u64,
    /// Total messages moved across all links (excluding EOS).
    pub messages: u64,
}

impl PipelineReport {
    /// Total busy units across PEs.
    pub fn total_busy(&self) -> u64 {
        self.per_pe.iter().map(|p| p.busy).sum()
    }

    /// Total idle steps across PEs.
    pub fn total_idle(&self) -> u64 {
        self.per_pe.iter().map(|p| p.idle).sum()
    }

    /// Largest per-PE queue depth seen anywhere in the array.
    pub fn max_queue(&self) -> u64 {
        self.per_pe.iter().map(|p| p.max_queue).max().unwrap_or(0)
    }

    /// Combines two sequential passes (e.g. union-find pass then label pass
    /// when the SIMD controller runs them phase by phase): makespans add,
    /// per-PE stats add componentwise.
    pub fn then(&self, later: &PipelineReport) -> PipelineReport {
        assert_eq!(self.per_pe.len(), later.per_pe.len());
        let per_pe = self
            .per_pe
            .iter()
            .zip(later.per_pe.iter())
            .map(|(a, b)| PeStats {
                finish: a.finish + b.finish,
                busy: a.busy + b.busy,
                idle: a.idle + b.idle,
                idle_used: a.idle_used + b.idle_used,
                sent: a.sent + b.sent,
                received: a.received + b.received,
                max_queue: a.max_queue.max(b.max_queue),
            })
            .collect();
        PipelineReport {
            per_pe,
            makespan: self.makespan + later.makespan,
            messages: self.messages + later.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(finish: u64, busy: u64) -> PeStats {
        PeStats {
            finish,
            busy,
            ..Default::default()
        }
    }

    #[test]
    fn totals_sum_over_pes() {
        let r = PipelineReport {
            per_pe: vec![stats(5, 3), stats(9, 7)],
            makespan: 9,
            messages: 4,
        };
        assert_eq!(r.total_busy(), 10);
        assert_eq!(r.total_idle(), 0);
    }

    #[test]
    fn then_adds_makespans_and_stats() {
        let a = PipelineReport {
            per_pe: vec![stats(5, 3), stats(9, 7)],
            makespan: 9,
            messages: 4,
        };
        let b = PipelineReport {
            per_pe: vec![stats(2, 2), stats(3, 3)],
            makespan: 3,
            messages: 1,
        };
        let c = a.then(&b);
        assert_eq!(c.makespan, 12);
        assert_eq!(c.messages, 5);
        assert_eq!(c.per_pe[1].busy, 10);
    }

    #[test]
    #[should_panic]
    fn then_requires_same_width() {
        let a = PipelineReport {
            per_pe: vec![stats(1, 1)],
            makespan: 1,
            messages: 0,
        };
        let b = PipelineReport::default();
        a.then(&b);
    }
}
