//! Differential and property-based tests: every union–find implementation
//! must agree with quick-find on arbitrary operation sequences, and the
//! metered costs must respect each structure's advertised worst-case bounds.

use proptest::prelude::*;
use slap_unionfind::{
    BlumUf, IdealO1, QuickFind, RankHalvingUf, SplittingUf, TarjanUf, UfKind, UnionFind, WeightedUf,
};

/// A scripted op: union(x, y) or same_set(x, y) query.
#[derive(Clone, Debug)]
enum Op {
    Union(usize, usize),
    Query(usize, usize),
}

fn ops_strategy(n: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..n, 0..n, prop::bool::ANY).prop_map(|(x, y, is_union)| {
            if is_union {
                Op::Union(x, y)
            } else {
                Op::Query(x, y)
            }
        }),
        0..len,
    )
}

fn run_differential<U: UnionFind>(n: usize, ops: &[Op]) {
    let mut uf = U::with_elements(n);
    let mut reference = QuickFind::with_elements(n);
    for op in ops {
        match *op {
            Op::Union(x, y) => {
                uf.union(x, y);
                reference.union(x, y);
            }
            Op::Query(x, y) => {
                assert_eq!(
                    uf.same_set(x, y),
                    reference.same_set(x, y),
                    "query({x},{y})"
                );
            }
        }
        assert_eq!(uf.set_count(), reference.set_count());
    }
    // Final partitions must be identical: compare via pairwise sampling of
    // all element pairs (n is small in these tests).
    for x in 0..n {
        for y in (x + 1)..n {
            assert_eq!(uf.same_set(x, y), reference.same_set(x, y));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_matches_quickfind(ops in ops_strategy(24, 120)) {
        run_differential::<WeightedUf>(24, &ops);
    }

    #[test]
    fn tarjan_matches_quickfind(ops in ops_strategy(24, 120)) {
        run_differential::<TarjanUf>(24, &ops);
    }

    #[test]
    fn rank_halving_matches_quickfind(ops in ops_strategy(24, 120)) {
        run_differential::<RankHalvingUf>(24, &ops);
    }

    #[test]
    fn splitting_matches_quickfind(ops in ops_strategy(24, 120)) {
        run_differential::<SplittingUf>(24, &ops);
    }

    #[test]
    fn blum_matches_quickfind(ops in ops_strategy(24, 120)) {
        run_differential::<BlumUf>(24, &ops);
    }

    #[test]
    fn ideal_matches_quickfind(ops in ops_strategy(24, 120)) {
        run_differential::<IdealO1>(24, &ops);
    }

    #[test]
    fn blum_invariants_hold_under_random_ops(ops in ops_strategy(40, 200)) {
        let mut uf = BlumUf::with_k(40, 3);
        for op in &ops {
            if let Op::Union(x, y) = *op {
                uf.union(x, y);
            }
        }
        uf.check_invariants();
    }

    #[test]
    fn idle_compress_never_changes_partition(ops in ops_strategy(24, 120), budget in 0u64..2000) {
        let mut uf = TarjanUf::with_elements(24);
        let mut reference = QuickFind::with_elements(24);
        for op in &ops {
            if let Op::Union(x, y) = *op {
                uf.union(x, y);
                reference.union(x, y);
            }
        }
        uf.idle_compress(budget);
        for x in 0..24 {
            for y in (x + 1)..24 {
                prop_assert_eq!(uf.same_set(x, y), reference.same_set(x, y));
            }
        }
    }

    #[test]
    fn representatives_are_within_id_bound(ops in ops_strategy(24, 120)) {
        for &kind in UfKind::ALL {
            let mut uf = kind.build(24);
            let bound = uf.id_bound();
            for op in &ops {
                if let Op::Union(x, y) = *op {
                    let r = uf.union(x, y);
                    prop_assert!(r < bound, "{kind}: representative {r} >= id_bound {bound}");
                }
            }
            for x in 0..24 {
                let r = uf.find(x);
                prop_assert!(r < bound);
            }
        }
    }
}

#[test]
fn blum_single_op_worst_case_beats_weighted_on_tournament() {
    // On the tournament sequence, weighted-union finds reach Θ(lg n) while
    // Blum single ops stay O(lg n / lg lg n). Compare the worst single find
    // after full construction.
    let n = 1 << 14;
    let mut weighted = WeightedUf::with_elements(n);
    let mut blum = BlumUf::with_elements(n);
    let mut stride = 1;
    while stride < n {
        for base in (0..n).step_by(2 * stride) {
            weighted.union(base, base + stride);
            blum.union(base, base + stride);
        }
        stride *= 2;
    }
    let worst = |uf: &mut dyn UnionFind| {
        let mut w = 0;
        for x in (0..n).step_by(127) {
            let c0 = uf.cost();
            uf.find(x);
            w = w.max(uf.cost() - c0);
        }
        w
    };
    let w_weighted = worst(&mut weighted);
    let w_blum = worst(&mut blum);
    assert!(
        w_blum < w_weighted,
        "blum worst {w_blum} should beat weighted worst {w_weighted}"
    );
}

#[test]
fn costs_are_monotone_and_nonzero() {
    for &kind in UfKind::ALL {
        let mut uf = kind.build(16);
        let mut last = uf.cost();
        for x in 0..15 {
            uf.union(x, x + 1);
            let c = uf.cost();
            assert!(c > last, "{kind}: cost did not advance");
            last = c;
        }
    }
}
