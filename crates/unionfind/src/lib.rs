//! Disjoint-set (union–find) implementations with unit-cost metering.
//!
//! Section 3 of Greenberg (SPAA 1995) shows that the running time of the
//! SLAP component-labeling algorithm is governed by the *single-operation*
//! cost of union–find, not the amortized cost:
//!
//! * weighted union + path compression (Tarjan \[20\]) gives near-linear
//!   amortized work but Θ(lg n) single finds → `O(n lg n)` labeling;
//! * Blum's k-UF trees \[3\] bound every operation by `O(lg n / lg lg n)` →
//!   `O(n lg n / lg lg n)` labeling (the paper's Theorem 3);
//! * union by rank + path halving (Tarjan & van Leeuwen \[21\]) is the
//!   "one-pass" practical variant the paper recommends for compressing
//!   during otherwise-idle processor time.
//!
//! Every implementation here meters its work in abstract **units** (one
//! pointer follow / pointer write / comparison each); the SLAP simulator
//! charges those units as processor time steps. `cost()` is cumulative, so
//! callers measure an operation with
//! `let c0 = uf.cost(); …; let elapsed = uf.cost() - c0;`.
//!
//! Representative ids are **unstable across unions** (a union may change the
//! root). Algorithms that attach per-set data (like the paper's
//! `adjnext`/`adjprev`) read the payloads of both roots before the union and
//! write the merged payload at the returned root. Payload arrays should be
//! sized by [`UnionFind::id_bound`]: Blum trees use auxiliary internal nodes,
//! so representatives may be numbers ≥ the element count.
//!
//! Entry points: the [`UnionFind`] trait (generic algorithms take
//! `UF: UnionFind`), [`UfKind`] for runtime selection (the CLI's `--uf`
//! flag), and the concrete implementations — [`TarjanUf`] as the paper's §3
//! default, [`RankHalvingUf`] as the practical one-pass recommendation.

#![warn(missing_docs)]

pub mod blum;
pub mod ideal;
pub mod quickfind;
pub mod rank_halving;
pub mod rem;
pub mod splitting;
pub mod tarjan;
pub mod weighted;

pub use blum::BlumUf;
pub use ideal::IdealO1;
pub use quickfind::QuickFind;
pub use rank_halving::RankHalvingUf;
pub use rem::RemUf;
pub use splitting::SplittingUf;
pub use tarjan::TarjanUf;
pub use weighted::WeightedUf;

/// A disjoint-set structure over elements `0..len()` with unit-cost metering.
///
/// All operations meter their work into [`cost`](UnionFind::cost). See the
/// crate docs for the unit convention and the representative-stability
/// caveat.
pub trait UnionFind {
    /// Creates a structure with `n` singleton sets (elements `0..n`).
    fn with_elements(n: usize) -> Self
    where
        Self: Sized;

    /// Number of elements.
    fn len(&self) -> usize;

    /// `true` when there are no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exclusive upper bound on representative ids ever returned by
    /// [`find`](UnionFind::find); size per-set payload arrays with this.
    fn id_bound(&self) -> usize;

    /// Returns the representative of the set containing `x`.
    fn find(&mut self, x: usize) -> usize;

    /// Unions the sets whose representatives are `ra` and `rb` (as returned
    /// by a *current* [`find`](UnionFind::find)); returns the representative
    /// of the merged set. Calling it with stale or non-root ids is a logic
    /// error (checked with `debug_assert`).
    ///
    /// Unioning a root with itself is a no-op returning that root.
    fn union_roots(&mut self, ra: usize, rb: usize) -> usize;

    /// Convenience: `find` both elements, then [`union_roots`](UnionFind::union_roots); returns the
    /// merged representative.
    fn union(&mut self, x: usize, y: usize) -> usize {
        let ra = self.find(x);
        let rb = self.find(y);
        self.union_roots(ra, rb)
    }

    /// `true` when `x` and `y` are currently in the same set.
    fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets currently represented.
    fn set_count(&self) -> usize;

    /// Cumulative metered work, in units.
    fn cost(&self) -> u64;

    /// Performs up to `budget` units of restructuring that would otherwise
    /// happen inside finds (path compression), without affecting the sets.
    /// Returns the units actually spent. Implementations without useful idle
    /// work return 0. Idle work is metered into
    /// [`idle_cost`](UnionFind::idle_cost), *not* [`cost`](UnionFind::cost):
    /// the SLAP model charges it against processor idle time.
    fn idle_compress(&mut self, _budget: u64) -> u64 {
        0
    }

    /// Cumulative units spent in [`idle_compress`](UnionFind::idle_compress).
    fn idle_cost(&self) -> u64 {
        0
    }
}

/// Runtime-selectable union–find implementation, for CLIs and experiment
/// harnesses (generic code should use the trait directly).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UfKind {
    /// Eager array relabeling: O(1) find, O(smaller set) union.
    QuickFind,
    /// Union by size, no compression: O(lg n) find worst case.
    Weighted,
    /// Union by size + full two-pass path compression (Tarjan \[20\]).
    Tarjan,
    /// Union by rank + path halving (Tarjan & van Leeuwen \[21\]).
    RankHalving,
    /// Union by rank + path splitting (Tarjan & van Leeuwen \[21\]).
    Splitting,
    /// Rem's algorithm: linking by index with interleaved splicing.
    Rem,
    /// Blum k-UF trees: O(lg n / lg lg n) worst case per operation \[3\].
    Blum,
    /// Correct structure whose *meter* charges exactly 1 unit per operation —
    /// the "assume unions and finds are constant time" oracle of Lemma 1/2.
    IdealO1,
}

impl UfKind {
    /// All kinds, in a stable order.
    pub const ALL: &'static [UfKind] = &[
        UfKind::QuickFind,
        UfKind::Weighted,
        UfKind::Tarjan,
        UfKind::RankHalving,
        UfKind::Splitting,
        UfKind::Rem,
        UfKind::Blum,
        UfKind::IdealO1,
    ];

    /// Short stable name (accepted by [`UfKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            UfKind::QuickFind => "quickfind",
            UfKind::Weighted => "weighted",
            UfKind::Tarjan => "tarjan",
            UfKind::RankHalving => "rank-halving",
            UfKind::Splitting => "splitting",
            UfKind::Rem => "rem",
            UfKind::Blum => "blum",
            UfKind::IdealO1 => "ideal",
        }
    }

    /// Parses a [`UfKind::name`].
    pub fn parse(s: &str) -> Option<UfKind> {
        UfKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Builds a boxed instance with `n` elements.
    pub fn build(self, n: usize) -> Box<dyn UnionFind> {
        match self {
            UfKind::QuickFind => Box::new(QuickFind::with_elements(n)),
            UfKind::Weighted => Box::new(WeightedUf::with_elements(n)),
            UfKind::Tarjan => Box::new(TarjanUf::with_elements(n)),
            UfKind::RankHalving => Box::new(RankHalvingUf::with_elements(n)),
            UfKind::Splitting => Box::new(SplittingUf::with_elements(n)),
            UfKind::Rem => Box::new(RemUf::with_elements(n)),
            UfKind::Blum => Box::new(BlumUf::with_elements(n)),
            UfKind::IdealO1 => Box::new(IdealO1::with_elements(n)),
        }
    }
}

impl std::fmt::Display for UfKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl UnionFind for Box<dyn UnionFind> {
    fn with_elements(_n: usize) -> Self {
        unimplemented!("construct via UfKind::build")
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn id_bound(&self) -> usize {
        (**self).id_bound()
    }
    fn find(&mut self, x: usize) -> usize {
        (**self).find(x)
    }
    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        (**self).union_roots(ra, rb)
    }
    fn set_count(&self) -> usize {
        (**self).set_count()
    }
    fn cost(&self) -> u64 {
        (**self).cost()
    }
    fn idle_compress(&mut self, budget: u64) -> u64 {
        (**self).idle_compress(budget)
    }
    fn idle_cost(&self) -> u64 {
        (**self).idle_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for &k in UfKind::ALL {
            assert_eq!(UfKind::parse(k.name()), Some(k));
        }
        assert_eq!(UfKind::parse("bogus"), None);
    }

    #[test]
    fn boxed_dispatch_works() {
        for &k in UfKind::ALL {
            let mut uf = k.build(8);
            assert_eq!(uf.len(), 8);
            assert_eq!(uf.set_count(), 8);
            let r = uf.union(1, 2);
            assert_eq!(uf.find(1), uf.find(2));
            assert_eq!(uf.find(1), r);
            assert_eq!(uf.set_count(), 7);
            assert!(uf.cost() > 0, "{k} metered no cost");
        }
    }
}
