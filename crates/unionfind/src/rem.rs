//! Rem's algorithm: linking by index with interleaved splicing.
//!
//! Rem's variant (attributed to M. Rem by Dijkstra; analyzed as one of the
//! practical schemes in the Tarjan–van Leeuwen family \[21\]) orders elements
//! by index and keeps every parent pointer pointing at an index at least as
//! large as the child's (`parent[root] = root`). Its hallmark is the
//! *combined* union: both access paths are climbed in lockstep and every
//! pointer inspected is immediately *spliced* upward, so a union compresses
//! as a side effect and often terminates before reaching either root.
//!
//! The SLAP pass cannot use the combined form directly — `Apply` (paper
//! Fig. 5) must read both roots' `adjnext`/`adjprev` payloads *before* the
//! union — so [`RemUf`] also implements the trait's split `find` /
//! [`union_roots`](crate::UnionFind::union_roots) interface: `find` climbs
//! with splicing (one follow + one rewrite per non-root step, the same
//! per-step work as the combined form) and `union_roots` links by index.
//! The combined [`RemUf::union`] override is exercised by the differential
//! tests and the E10 per-operation cost study, where its early-termination
//! advantage is measurable.

use crate::UnionFind;

/// Rem's linking-by-index union–find with splicing (see module docs).
///
/// Not weighted or ranked: tree shape is governed by index order alone, so a
/// single `find` can cost Θ(n) in the worst case. Included because §3 of the
/// paper frames the practical choice among compression schemes, and Rem's is
/// the classic "compress while you walk, even on unions" representative.
pub struct RemUf {
    parent: Vec<u32>,
    sets: usize,
    cost: u64,
    idle_cost: u64,
    idle_cursor: usize,
}

impl RemUf {
    /// Depth of `x` in its tree (diagnostic; not metered).
    pub fn depth(&self, mut x: usize) -> usize {
        let mut d = 0;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
            d += 1;
        }
        d
    }

    /// The combined Rem union on *elements* (not roots): climbs both access
    /// paths in lockstep, splicing every inspected pointer, and links when a
    /// root is reached. Returns `true` when the two elements were in
    /// different sets (a real union happened). Terminates as soon as the two
    /// walks meet, possibly far below the roots.
    pub fn union_splice(&mut self, x: usize, y: usize) -> bool {
        let (mut rx, mut ry) = (x, y);
        loop {
            let (px, py) = (self.parent[rx], self.parent[ry]);
            self.cost += 2; // inspect both parents
            if px == py {
                return false;
            }
            // Keep the invariant: work on the side with the smaller parent.
            if px < py {
                if rx as u32 == px {
                    // rx is a root: link it under the other side's parent.
                    self.parent[rx] = py;
                    self.cost += 1;
                    self.sets -= 1;
                    return true;
                }
                // Splice: redirect rx upward to py, then continue from rx's
                // old parent. The set structure is unchanged (py is in the
                // same set as ry and, transitively, will be merged), but the
                // tree gets shallower with every step.
                self.parent[rx] = py;
                self.cost += 1;
                rx = px as usize;
            } else {
                if ry as u32 == py {
                    self.parent[ry] = px;
                    self.cost += 1;
                    self.sets -= 1;
                    return true;
                }
                self.parent[ry] = px;
                self.cost += 1;
                ry = py as usize;
            }
        }
    }
}

impl UnionFind for RemUf {
    fn with_elements(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "element count too large");
        RemUf {
            parent: (0..n as u32).collect(),
            sets: n,
            cost: 0,
            idle_cost: 0,
            idle_cursor: 0,
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn id_bound(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, mut x: usize) -> usize {
        self.cost += 1;
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            self.cost += 1;
            let gp = self.parent[p];
            if gp as usize == p {
                return p;
            }
            // Splice toward the grandparent — the same single-pointer
            // rewrite Rem's union performs per step.
            self.parent[x] = gp;
            self.cost += 1;
            x = p;
        }
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert_eq!(self.parent[ra] as usize, ra, "ra is not a root");
        debug_assert_eq!(self.parent[rb] as usize, rb, "rb is not a root");
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        // Link by index: the larger index becomes the root, preserving the
        // parent-monotonicity invariant.
        let (low, high) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[low] = high as u32;
        self.sets -= 1;
        high
    }

    /// Overridden to use the genuine interleaved Rem union. A trailing find
    /// locates the merged root for the caller (payload-free callers may
    /// prefer [`RemUf::union_splice`] directly, which skips it).
    fn union(&mut self, x: usize, y: usize) -> usize {
        self.union_splice(x, y);
        self.find(x)
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }

    fn idle_compress(&mut self, budget: u64) -> u64 {
        let n = self.parent.len();
        if n == 0 {
            return 0;
        }
        let mut spent = 0u64;
        let mut visited = 0usize;
        while spent < budget && visited < n {
            let mut x = self.idle_cursor;
            self.idle_cursor = (self.idle_cursor + 1) % n;
            visited += 1;
            while spent < budget {
                let p = self.parent[x] as usize;
                spent += 1;
                if p == x {
                    break;
                }
                let gp = self.parent[p];
                if gp as usize == p || spent >= budget {
                    break;
                }
                self.parent[x] = gp;
                spent += 1;
                x = p;
            }
        }
        self.idle_cost += spent;
        spent
    }

    fn idle_cost(&self) -> u64 {
        self.idle_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = RemUf::with_elements(8);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.same_set(0, 3));
        assert!(!uf.same_set(0, 7));
        assert_eq!(uf.set_count(), 5);
    }

    #[test]
    fn parent_indices_are_monotone() {
        let mut uf = RemUf::with_elements(64);
        for (x, y) in [(5, 0), (63, 1), (1, 5), (30, 31), (31, 0), (62, 63)] {
            uf.union_splice(x, y);
        }
        for x in 0..64 {
            assert!(uf.parent[x] as usize >= x, "invariant broken at {x}");
        }
    }

    #[test]
    fn union_splice_reports_novelty() {
        let mut uf = RemUf::with_elements(4);
        assert!(uf.union_splice(0, 1));
        assert!(!uf.union_splice(0, 1));
        assert!(uf.union_splice(1, 2));
        assert!(!uf.union_splice(0, 2));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn combined_union_matches_split_interface() {
        let seq = [(0usize, 9usize), (9, 3), (4, 5), (5, 3), (7, 8), (8, 0)];
        let mut combined = RemUf::with_elements(10);
        let mut split = RemUf::with_elements(10);
        for &(x, y) in &seq {
            combined.union_splice(x, y);
            let ra = split.find(x);
            let rb = split.find(y);
            split.union_roots(ra, rb);
        }
        for x in 0..10 {
            for y in (x + 1)..10 {
                assert_eq!(combined.same_set(x, y), split.same_set(x, y));
            }
        }
    }

    #[test]
    fn splicing_compresses_during_union() {
        // Hand-build a deep chain over the even indices (0 -> 2 -> … -> 126)
        // and leave 127 a singleton. The combined union walks the whole
        // chain, splicing every node directly under 127 as it goes, then
        // links the chain's root — one union, full flattening.
        let n = 128;
        let mut uf = RemUf::with_elements(n);
        for x in (0..n - 2).step_by(2) {
            uf.parent[x] = (x + 2) as u32;
        }
        uf.sets = n - (n / 2 - 1);
        let before = uf.depth(0);
        assert_eq!(before, n / 2 - 1);
        assert!(uf.union_splice(0, n - 1));
        assert_eq!(uf.depth(0), 1, "splicing should flatten the walked path");
        assert!(uf.same_set(0, n - 2));
        assert!(uf.same_set(0, n - 1));
    }

    #[test]
    fn find_is_splicing_not_plain_walk() {
        let n = 64;
        let mut uf = RemUf::with_elements(n);
        for x in 0..n - 1 {
            uf.parent[x] = (x + 1) as u32;
        }
        uf.sets = 1;
        let d0 = uf.depth(0);
        uf.find(0);
        assert!(uf.depth(0) <= d0 / 2 + 1);
    }

    #[test]
    fn idle_compress_reduces_depth_and_meters_idle() {
        let n = 64;
        let mut uf = RemUf::with_elements(n);
        for x in 0..n - 1 {
            uf.parent[x] = (x + 1) as u32;
        }
        uf.sets = 1;
        let spent = uf.idle_compress(10_000);
        assert!(spent > 0);
        assert_eq!(uf.idle_cost(), spent);
        assert_eq!(uf.cost(), 0, "idle work must not hit the hot meter");
        assert!(uf.depth(0) < n - 1);
    }
}
