//! Union by size + full two-pass path compression (Tarjan \[20\]).

use crate::UnionFind;

/// The implementation the paper calls "probably most widely recognized as an
/// efficient implementation": union by size and full path compression, with
/// near-constant amortized cost (inverse-Ackermann) but Θ(lg n) single-find
/// worst case — the source of the `O(n lg n)` SLAP bound.
///
/// `find` walks to the root (1 unit/edge + 1) and then rewrites every node on
/// the path to point at the root (1 unit per rewrite). `union_roots` is 1
/// unit. [`idle_compress`](UnionFind::idle_compress) runs a round-robin
/// path-halving sweep, the paper's "have processors perform some path
/// compression when they would otherwise just be waiting" idea.
pub struct TarjanUf {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
    cost: u64,
    idle_cost: u64,
    idle_cursor: usize,
}

impl TarjanUf {
    const ROOT: u32 = u32::MAX;

    /// Depth of `x` in its tree (diagnostic; not metered).
    pub fn depth(&self, mut x: usize) -> usize {
        let mut d = 0;
        while self.parent[x] != Self::ROOT {
            x = self.parent[x] as usize;
            d += 1;
        }
        d
    }

    /// Maximum node depth over the whole forest (diagnostic; not metered).
    pub fn max_depth(&self) -> usize {
        (0..self.parent.len())
            .map(|x| self.depth(x))
            .max()
            .unwrap_or(0)
    }
}

impl UnionFind for TarjanUf {
    fn with_elements(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "element count too large");
        TarjanUf {
            parent: vec![Self::ROOT; n],
            size: vec![1; n],
            sets: n,
            cost: 0,
            idle_cost: 0,
            idle_cursor: 0,
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn id_bound(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, x: usize) -> usize {
        // pass 1: locate the root
        self.cost += 1;
        let mut r = x;
        while self.parent[r] != Self::ROOT {
            r = self.parent[r] as usize;
            self.cost += 1;
        }
        // pass 2: compress the path
        let mut cur = x;
        while self.parent[cur] != Self::ROOT {
            let next = self.parent[cur] as usize;
            if next != r {
                self.parent[cur] = r as u32;
                self.cost += 1;
            }
            cur = next;
        }
        r
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert_eq!(self.parent[ra], Self::ROOT, "ra is not a root");
        debug_assert_eq!(self.parent[rb], Self::ROOT, "rb is not a root");
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        let (small, big) = if self.size[ra] <= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.sets -= 1;
        big
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }

    fn idle_compress(&mut self, budget: u64) -> u64 {
        let n = self.parent.len();
        if n == 0 {
            return 0;
        }
        let mut spent = 0u64;
        let mut visited = 0usize;
        // Round-robin path halving: every two pointer follows shortcut one
        // grandparent link. Stop when the budget is exhausted or every
        // element has been touched once this call.
        while spent < budget && visited < n {
            let x = self.idle_cursor;
            self.idle_cursor = (self.idle_cursor + 1) % n;
            visited += 1;
            let mut cur = x;
            while spent < budget && self.parent[cur] != Self::ROOT {
                let p = self.parent[cur] as usize;
                spent += 1;
                if self.parent[p] == Self::ROOT || spent >= budget {
                    break;
                }
                self.parent[cur] = self.parent[p];
                spent += 1;
                cur = self.parent[cur] as usize;
            }
        }
        self.idle_cost += spent;
        spent
    }

    fn idle_cost(&self) -> u64 {
        self.idle_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tournament(uf: &mut TarjanUf, n: usize) {
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
    }

    #[test]
    fn basic_union_find() {
        let mut uf = TarjanUf::with_elements(10);
        uf.union(0, 5);
        uf.union(5, 9);
        assert!(uf.same_set(0, 9));
        assert_eq!(uf.set_count(), 8);
    }

    #[test]
    fn find_compresses_path_to_depth_one() {
        let n = 128;
        let mut uf = TarjanUf::with_elements(n);
        tournament(&mut uf, n);
        let deepest = (0..n).max_by_key(|&x| uf.depth(x)).unwrap();
        let d = uf.depth(deepest);
        assert!(d >= 2);
        uf.find(deepest);
        assert!(uf.depth(deepest) <= 1, "path not compressed");
    }

    #[test]
    fn second_find_is_cheap() {
        let n = 256;
        let mut uf = TarjanUf::with_elements(n);
        tournament(&mut uf, n);
        let deepest = (0..n).max_by_key(|&x| uf.depth(x)).unwrap();
        assert!(uf.depth(deepest) >= 2, "tournament left no deep path");
        let c0 = uf.cost();
        uf.find(deepest);
        let first = uf.cost() - c0;
        let c1 = uf.cost();
        uf.find(deepest);
        let second = uf.cost() - c1;
        assert!(first > second);
        // After compression the node sits at depth 1: touch + one edge.
        assert_eq!(second, 2);
    }

    #[test]
    fn idle_compress_reduces_future_cost_and_meters_separately() {
        let n = 512;
        let mut uf = TarjanUf::with_elements(n);
        tournament(&mut uf, n);
        let busy = uf.cost();
        let spent = uf.idle_compress(10_000);
        assert!(spent > 0);
        assert_eq!(uf.cost(), busy, "idle work leaked into busy cost");
        assert_eq!(uf.idle_cost(), spent);
        assert!(
            uf.max_depth() <= 2,
            "halving sweep left deep paths: {}",
            uf.max_depth()
        );
    }

    #[test]
    fn idle_compress_respects_budget() {
        let n = 512;
        let mut uf = TarjanUf::with_elements(n);
        tournament(&mut uf, n);
        let spent = uf.idle_compress(7);
        assert!(spent <= 7);
    }

    #[test]
    fn idle_compress_preserves_partition() {
        let n = 64;
        let mut uf = TarjanUf::with_elements(n);
        tournament(&mut uf, n / 2); // half merged, half singletons
        let sets_before = uf.set_count();
        let reps_before: Vec<usize> = (0..n).map(|x| uf.find(x)).collect();
        uf.idle_compress(u64::MAX >> 1);
        assert_eq!(uf.set_count(), sets_before);
        for (x, &rep) in reps_before.iter().enumerate() {
            assert_eq!(uf.find(x), rep);
        }
    }
}
