//! Union by rank + path halving (Tarjan & van Leeuwen \[21\]).

use crate::UnionFind;

/// The "one-pass" scheme the paper recommends for interleaving compression
/// with waiting: path *halving* makes progress even if a find is abandoned
/// before reaching the root, and union by rank is shown in \[21\] to combine
/// well with it (same inverse-Ackermann amortized bound as full compression).
///
/// `find` walks to the root, shortcutting every other node to its grandparent
/// as it goes (1 unit per follow, 1 per rewrite). `union_roots` is 1 unit.
pub struct RankHalvingUf {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
    cost: u64,
    idle_cost: u64,
    idle_cursor: usize,
}

impl RankHalvingUf {
    const ROOT: u32 = u32::MAX;

    /// Depth of `x` in its tree (diagnostic; not metered).
    pub fn depth(&self, mut x: usize) -> usize {
        let mut d = 0;
        while self.parent[x] != Self::ROOT {
            x = self.parent[x] as usize;
            d += 1;
        }
        d
    }
}

impl UnionFind for RankHalvingUf {
    fn with_elements(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "element count too large");
        RankHalvingUf {
            parent: vec![Self::ROOT; n],
            rank: vec![0; n],
            sets: n,
            cost: 0,
            idle_cost: 0,
            idle_cursor: 0,
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn id_bound(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, mut x: usize) -> usize {
        self.cost += 1;
        while self.parent[x] != Self::ROOT {
            let p = self.parent[x] as usize;
            self.cost += 1;
            if self.parent[p] == Self::ROOT {
                return p;
            }
            // halve: point x at its grandparent, then step there
            self.parent[x] = self.parent[p];
            self.cost += 1;
            x = self.parent[x] as usize;
        }
        x
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert_eq!(self.parent[ra], Self::ROOT, "ra is not a root");
        debug_assert_eq!(self.parent[rb], Self::ROOT, "rb is not a root");
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        let (low, high) = if self.rank[ra] <= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[low] = high as u32;
        if self.rank[low] == self.rank[high] {
            self.rank[high] += 1;
        }
        self.sets -= 1;
        high
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }

    fn idle_compress(&mut self, budget: u64) -> u64 {
        let n = self.parent.len();
        if n == 0 {
            return 0;
        }
        let mut spent = 0u64;
        let mut visited = 0usize;
        while spent < budget && visited < n {
            let mut x = self.idle_cursor;
            self.idle_cursor = (self.idle_cursor + 1) % n;
            visited += 1;
            while spent < budget && self.parent[x] != Self::ROOT {
                let p = self.parent[x] as usize;
                spent += 1;
                if self.parent[p] == Self::ROOT || spent >= budget {
                    break;
                }
                self.parent[x] = self.parent[p];
                spent += 1;
                x = self.parent[x] as usize;
            }
        }
        self.idle_cost += spent;
        spent
    }

    fn idle_cost(&self) -> u64 {
        self.idle_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = RankHalvingUf::with_elements(8);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.same_set(0, 3));
        assert!(!uf.same_set(0, 7));
        assert_eq!(uf.set_count(), 5);
    }

    #[test]
    fn halving_shortens_paths() {
        let n = 256;
        let mut uf = RankHalvingUf::with_elements(n);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        let deepest = (0..n).max_by_key(|&x| uf.depth(x)).unwrap();
        let d0 = uf.depth(deepest);
        uf.find(deepest);
        let d1 = uf.depth(deepest);
        assert!(d1 <= d0 / 2 + 1, "halving did not halve: {d0} -> {d1}");
    }

    #[test]
    fn rank_bounds_depth() {
        let n = 1024;
        let mut uf = RankHalvingUf::with_elements(n);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        for x in 0..n {
            assert!(uf.depth(x) <= 10, "depth exceeds lg n");
        }
    }

    #[test]
    fn aborted_find_still_helps() {
        // Idle compression with a tiny budget must not change set structure.
        let mut uf = RankHalvingUf::with_elements(32);
        for x in 0..31 {
            uf.union(x, x + 1);
        }
        let before = uf.set_count();
        uf.idle_compress(3);
        assert_eq!(uf.set_count(), before);
        assert!(uf.same_set(0, 31));
    }
}
