//! Union by rank + path splitting (Tarjan & van Leeuwen \[21\]).

use crate::UnionFind;

/// The second "one-pass" compression scheme analyzed in \[21\] alongside
/// halving: during a find, every node on the path is redirected to its
/// grandparent (halving redirects every *other* node). Same
/// inverse-Ackermann amortized bound; slightly more writes per find,
/// slightly faster flattening. Included so experiment E10 can compare all
/// the §3-relevant variants under one ruler.
///
/// `find` walks to the root splitting as it goes (1 unit per follow, 1 per
/// rewrite). `union_roots` is 1 unit.
pub struct SplittingUf {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
    cost: u64,
    idle_cost: u64,
    idle_cursor: usize,
}

impl SplittingUf {
    const ROOT: u32 = u32::MAX;

    /// Depth of `x` in its tree (diagnostic; not metered).
    pub fn depth(&self, mut x: usize) -> usize {
        let mut d = 0;
        while self.parent[x] != Self::ROOT {
            x = self.parent[x] as usize;
            d += 1;
        }
        d
    }
}

impl UnionFind for SplittingUf {
    fn with_elements(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "element count too large");
        SplittingUf {
            parent: vec![Self::ROOT; n],
            rank: vec![0; n],
            sets: n,
            cost: 0,
            idle_cost: 0,
            idle_cursor: 0,
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn id_bound(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, mut x: usize) -> usize {
        self.cost += 1;
        loop {
            let p = self.parent[x];
            if p == Self::ROOT {
                return x;
            }
            self.cost += 1;
            let gp = self.parent[p as usize];
            if gp == Self::ROOT {
                return p as usize;
            }
            // split: redirect x to its grandparent, then step to the old
            // parent (every node on the path gets redirected)
            self.parent[x] = gp;
            self.cost += 1;
            x = p as usize;
        }
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert_eq!(self.parent[ra], Self::ROOT, "ra is not a root");
        debug_assert_eq!(self.parent[rb], Self::ROOT, "rb is not a root");
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        let (low, high) = if self.rank[ra] <= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[low] = high as u32;
        if self.rank[low] == self.rank[high] {
            self.rank[high] += 1;
        }
        self.sets -= 1;
        high
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }

    fn idle_compress(&mut self, budget: u64) -> u64 {
        let n = self.parent.len();
        if n == 0 {
            return 0;
        }
        let mut spent = 0u64;
        let mut visited = 0usize;
        while spent < budget && visited < n {
            let mut x = self.idle_cursor;
            self.idle_cursor = (self.idle_cursor + 1) % n;
            visited += 1;
            while spent < budget && self.parent[x] != Self::ROOT {
                let p = self.parent[x] as usize;
                spent += 1;
                if self.parent[p] == Self::ROOT || spent >= budget {
                    break;
                }
                self.parent[x] = self.parent[p];
                spent += 1;
                x = p;
            }
        }
        self.idle_cost += spent;
        spent
    }

    fn idle_cost(&self) -> u64 {
        self.idle_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = SplittingUf::with_elements(8);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.same_set(0, 3));
        assert!(!uf.same_set(0, 7));
        assert_eq!(uf.set_count(), 5);
    }

    #[test]
    fn splitting_redirects_every_path_node() {
        let n = 128;
        let mut uf = SplittingUf::with_elements(n);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        let deepest = (0..n).max_by_key(|&x| uf.depth(x)).unwrap();
        let d0 = uf.depth(deepest);
        assert!(d0 >= 2);
        uf.find(deepest);
        // After splitting, the node's depth is roughly halved and every node
        // on the old path moved up.
        assert!(uf.depth(deepest) <= d0 / 2 + 1);
    }

    #[test]
    fn repeated_finds_flatten_to_constant() {
        let n = 256;
        let mut uf = SplittingUf::with_elements(n);
        for x in 0..n - 1 {
            uf.union(x, x + 1);
        }
        for _ in 0..4 {
            for x in 0..n {
                uf.find(x);
            }
        }
        for x in 0..n {
            assert!(uf.depth(x) <= 2, "path not flattened at {x}");
        }
    }

    #[test]
    fn partition_matches_rank_halving() {
        use crate::rank_halving::RankHalvingUf;
        let n = 64;
        let mut a = SplittingUf::with_elements(n);
        let mut b = RankHalvingUf::with_elements(n);
        for (x, y) in [(0, 5), (5, 9), (10, 20), (20, 0), (63, 62), (1, 2)] {
            a.union(x, y);
            b.union(x, y);
        }
        for x in 0..n {
            for y in (x + 1)..n {
                assert_eq!(a.same_set(x, y), b.same_set(x, y));
            }
        }
    }
}
