//! Union by size without path compression.

use crate::UnionFind;

/// Forest with union by size and *no* compression: the textbook baseline the
/// paper's O(n lg n) bound rests on ("as long as we use weighted union, no
/// node in any tree ever has depth greater than lg n").
///
/// `find` walks to the root (1 unit per edge, +1 to touch the start);
/// `union_roots` is 1 unit.
pub struct WeightedUf {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
    cost: u64,
}

impl WeightedUf {
    const ROOT: u32 = u32::MAX;

    /// Depth of `x` in its tree (test/diagnostic helper; not metered).
    pub fn depth(&self, mut x: usize) -> usize {
        let mut d = 0;
        while self.parent[x] != Self::ROOT {
            x = self.parent[x] as usize;
            d += 1;
        }
        d
    }

    /// Maximum node depth over the whole forest (diagnostic; not metered).
    pub fn max_depth(&self) -> usize {
        (0..self.parent.len())
            .map(|x| self.depth(x))
            .max()
            .unwrap_or(0)
    }
}

impl UnionFind for WeightedUf {
    fn with_elements(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "element count too large");
        WeightedUf {
            parent: vec![Self::ROOT; n],
            size: vec![1; n],
            sets: n,
            cost: 0,
        }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn id_bound(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, mut x: usize) -> usize {
        self.cost += 1;
        while self.parent[x] != Self::ROOT {
            x = self.parent[x] as usize;
            self.cost += 1;
        }
        x
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert_eq!(self.parent[ra], Self::ROOT, "ra is not a root");
        debug_assert_eq!(self.parent[rb], Self::ROOT, "rb is not a root");
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        let (small, big) = if self.size[ra] <= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.sets -= 1;
        big
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = WeightedUf::with_elements(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 2);
        assert!(uf.same_set(1, 3));
        assert!(!uf.same_set(1, 4));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn depth_bounded_by_lg_n() {
        // Binomial merge order maximizes depth: depth <= lg n.
        let n = 256;
        let mut uf = WeightedUf::with_elements(n);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        assert_eq!(uf.set_count(), 1);
        let d = uf.max_depth();
        assert!(d <= 8, "depth {d} exceeds lg 256");
        assert!(d >= 8, "tournament should reach lg n depth, got {d}");
    }

    #[test]
    fn find_cost_grows_with_depth() {
        let n = 64;
        let mut uf = WeightedUf::with_elements(n);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        let deepest = (0..n).max_by_key(|&x| uf.depth(x)).unwrap();
        let c0 = uf.cost();
        uf.find(deepest);
        assert_eq!(uf.cost() - c0, uf.depth(deepest) as u64 + 1);
    }
}
