//! The Lemma 1/2 cost oracle: correct sets, unit-cost meter.

use crate::rank_halving::RankHalvingUf;
use crate::UnionFind;

/// A correct union–find whose **meter** charges exactly one unit per `find`
/// and per `union_roots`, regardless of the real work done.
///
/// Section 2 of the paper analyzes Algorithm CC "under the assumption that
/// each union-find operation can be performed in constant time" (Lemma 1 and
/// Lemma 2 conclude `O(n)` total). Running the full pipeline with this
/// structure reproduces exactly that accounting, so experiment E1 can verify
/// the linear bound without inventing a fictional data structure: set
/// semantics come from a real [`RankHalvingUf`], only the clock is idealized.
pub struct IdealO1 {
    inner: RankHalvingUf,
    ops: u64,
}

impl UnionFind for IdealO1 {
    fn with_elements(n: usize) -> Self {
        IdealO1 {
            inner: RankHalvingUf::with_elements(n),
            ops: 0,
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn id_bound(&self) -> usize {
        self.inner.id_bound()
    }

    fn find(&mut self, x: usize) -> usize {
        self.ops += 1;
        self.inner.find(x)
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        self.ops += 1;
        self.inner.union_roots(ra, rb)
    }

    fn set_count(&self) -> usize {
        self.inner.set_count()
    }

    fn cost(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_exactly_one_unit_per_operation() {
        let mut uf = IdealO1::with_elements(64);
        assert_eq!(uf.cost(), 0);
        for x in 0..63 {
            uf.union(x, x + 1); // 2 finds + 1 union = 3 units
        }
        assert_eq!(uf.cost(), 63 * 3);
        let c = uf.cost();
        uf.find(0);
        assert_eq!(uf.cost(), c + 1);
    }

    #[test]
    fn semantics_match_inner_structure() {
        let mut uf = IdealO1::with_elements(16);
        uf.union(0, 8);
        uf.union(8, 15);
        assert!(uf.same_set(0, 15));
        assert_eq!(uf.set_count(), 14);
    }
}
