//! Blum's k-UF trees: `O(lg n / lg lg n)` worst case per operation \[3\].
//!
//! Elements live at the **leaves** of shallow k-ary trees; internal nodes are
//! auxiliary. The invariants maintained are
//!
//! 1. every leaf of a tree is at the same depth (equivalently, every child of
//!    a node at height `h` has height `h − 1`);
//! 2. every *internal non-root* node has at least `k` children;
//! 3. every internal root has at least 2 children.
//!
//! Together these give `leaves ≥ 2·k^(h−1)` for a tree of height `h ≥ 1`, so
//! `h ≤ 1 + log_k(n/2)`. A `find` climbs the leaf-to-root path:
//! `O(log n / log k)` units. A `union` either *fuses* a root with fewer than
//! `k` children into the other root (`O(k)` units), stacks a new root over
//! two k-heavy roots of equal height (`O(1)`), or hangs the shorter tree off
//! a node at the right level of the taller one (`O(height)`), never breaking
//! 1–3. With `k = ⌈lg n / lg lg n⌉` both operations are
//! `O(lg n / lg lg n)` worst case — the bound behind the paper's Theorem 3.
//!
//! Representatives are internal-node ids (or the leaf itself for singleton
//! sets), so they may be ≥ the element count; see
//! [`id_bound`](crate::UnionFind::id_bound).

use crate::UnionFind;

const NONE: u32 = u32::MAX;

struct Node {
    parent: u32,
    /// Height of the subtree rooted here (0 = leaf). Fixed at creation:
    /// restructuring only ever reattaches whole subtrees at level-consistent
    /// positions.
    height: u32,
    /// Child list. Only consulted while this node can still act as a root
    /// (fusion) or to walk down one level (`children[0]`); moved wholesale on
    /// fusion.
    children: Vec<u32>,
    /// Set when the node was fused away; dead nodes are never revisited.
    dead: bool,
}

/// Blum's k-UF trees. See the module docs.
pub struct BlumUf {
    nodes: Vec<Node>,
    n_elements: usize,
    k: usize,
    sets: usize,
    cost: u64,
}

impl BlumUf {
    /// Creates the structure with an explicit branching parameter `k ≥ 2`
    /// (the default constructor picks `k ≈ lg n / lg lg n`).
    pub fn with_k(n: usize, k: usize) -> Self {
        assert!(k >= 2, "k must be at least 2");
        assert!(n < (u32::MAX / 2) as usize, "element count too large");
        let nodes = (0..n)
            .map(|_| Node {
                parent: NONE,
                height: 0,
                children: Vec::new(),
                dead: false,
            })
            .collect();
        BlumUf {
            nodes,
            n_elements: n,
            k,
            sets: n,
            cost: 0,
        }
    }

    /// The branching parameter chosen for `n` elements:
    /// `max(2, ⌈lg n / lg lg n⌉)`.
    pub fn default_k(n: usize) -> usize {
        if n < 4 {
            return 2;
        }
        let lg = (n as f64).log2();
        let lglg = lg.log2();
        (lg / lglg).ceil() as usize
    }

    /// The branching parameter in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Height of the tree containing `x` (diagnostic; not metered).
    pub fn tree_height(&self, mut x: usize) -> usize {
        while self.nodes[x].parent != NONE {
            x = self.nodes[x].parent as usize;
        }
        self.nodes[x].height as usize
    }

    fn alloc(&mut self, height: u32, children: Vec<u32>) -> usize {
        let id = self.nodes.len();
        assert!(id < u32::MAX as usize);
        self.nodes.push(Node {
            parent: NONE,
            height,
            children,
            dead: false,
        });
        id
    }

    /// Walks down from root `r` to the node at height `target` following
    /// first-child pointers, metering one unit per step.
    fn descend(&mut self, r: usize, target: u32) -> usize {
        let mut v = r;
        while self.nodes[v].height > target {
            v = self.nodes[v].children[0] as usize;
            self.cost += 1;
        }
        v
    }

    /// Checks invariants 1–3 over all live nodes, panicking with a
    /// description on violation. Test / debugging aid (not metered).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let k = self.k;
        let mut live_roots = 0usize;
        for (id, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            if node.parent == NONE {
                live_roots += 1;
                if node.height > 0 {
                    assert!(
                        node.children.len() >= 2,
                        "root {id} at height {} has {} < 2 children",
                        node.height,
                        node.children.len()
                    );
                }
            }
            if node.height > 0 {
                if node.parent != NONE {
                    assert!(
                        node.children.len() >= k,
                        "internal non-root {id} has {} < k={k} children",
                        node.children.len()
                    );
                }
                for &ch in &node.children {
                    let ch = ch as usize;
                    assert!(!self.nodes[ch].dead, "live node {id} has dead child {ch}");
                    assert_eq!(
                        self.nodes[ch].parent, id as u32,
                        "child {ch} does not point back at {id}"
                    );
                    assert_eq!(
                        self.nodes[ch].height + 1,
                        node.height,
                        "child {ch} of {id} at wrong level"
                    );
                }
            }
        }
        assert_eq!(live_roots, self.sets, "root count != set count");
        // Height bound: leaves >= 2*k^(h-1).
        for (id, node) in self.nodes.iter().enumerate() {
            if node.dead || node.parent != NONE || node.height == 0 {
                continue;
            }
            let h = node.height as usize;
            let min_leaves = 2usize.saturating_mul(k.saturating_pow(h as u32 - 1));
            let leaves = self.count_leaves(id);
            assert!(
                leaves >= min_leaves.min(self.n_elements),
                "tree at {id}: height {h} with only {leaves} leaves (k={k})"
            );
        }
    }

    fn count_leaves(&self, id: usize) -> usize {
        let node = &self.nodes[id];
        if node.height == 0 {
            return 1;
        }
        node.children
            .iter()
            .map(|&c| self.count_leaves(c as usize))
            .sum()
    }
}

impl UnionFind for BlumUf {
    fn with_elements(n: usize) -> Self {
        Self::with_k(n, Self::default_k(n))
    }

    fn len(&self) -> usize {
        self.n_elements
    }

    fn id_bound(&self) -> usize {
        // Each union allocates at most one node and n-1 unions are possible,
        // but fused-away allocations keep ids monotone: 2n covers everything.
        2 * self.n_elements.max(1)
    }

    fn find(&mut self, x: usize) -> usize {
        debug_assert!(x < self.n_elements, "find on non-element id");
        self.cost += 1;
        let mut cur = x;
        while self.nodes[cur].parent != NONE {
            cur = self.nodes[cur].parent as usize;
            self.cost += 1;
        }
        cur
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert!(
            !self.nodes[ra].dead && self.nodes[ra].parent == NONE,
            "ra not a live root"
        );
        debug_assert!(
            !self.nodes[rb].dead && self.nodes[rb].parent == NONE,
            "rb not a live root"
        );
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        self.sets -= 1;
        let (ha, hb) = (self.nodes[ra].height, self.nodes[rb].height);
        // Arrange: height(a) <= height(b).
        let (a, b, ha, hb) = if ha <= hb {
            (ra, rb, ha, hb)
        } else {
            (rb, ra, hb, ha)
        };
        let k = self.k;
        if ha == hb {
            if ha == 0 {
                // two singleton leaves: stack a new root over both
                let r = self.alloc(1, vec![a as u32, b as u32]);
                self.nodes[a].parent = r as u32;
                self.nodes[b].parent = r as u32;
                self.cost += 2;
                r
            } else {
                let (da, db) = (self.nodes[a].children.len(), self.nodes[b].children.len());
                if da.min(db) < k {
                    // fuse the lighter root into the heavier one
                    let (src, dst) = if da <= db { (a, b) } else { (b, a) };
                    let moved = std::mem::take(&mut self.nodes[src].children);
                    self.cost += moved.len() as u64;
                    for &ch in &moved {
                        self.nodes[ch as usize].parent = dst as u32;
                    }
                    self.nodes[dst].children.extend(moved);
                    self.nodes[src].dead = true;
                    dst
                } else {
                    // both roots k-heavy: stack a new root over them
                    let r = self.alloc(hb + 1, vec![a as u32, b as u32]);
                    self.nodes[a].parent = r as u32;
                    self.nodes[b].parent = r as u32;
                    self.cost += 2;
                    r
                }
            }
        } else {
            // ha < hb: hang tree a off tree b at the right level
            let deg_a = self.nodes[a].children.len();
            if ha == 0 || deg_a >= k {
                // a itself may become an internal node: attach it at height ha+1
                let v = self.descend(b, ha + 1);
                self.nodes[a].parent = v as u32;
                self.nodes[v].children.push(a as u32);
                self.cost += 1;
            } else {
                // a's root is too light to become internal: donate its
                // children to a node of b at height ha instead
                let w = self.descend(b, ha);
                let moved = std::mem::take(&mut self.nodes[a].children);
                self.cost += moved.len() as u64;
                for &ch in &moved {
                    self.nodes[ch as usize].parent = w as u32;
                }
                self.nodes[w].children.extend(moved);
                self.nodes[a].dead = true;
            }
            b
        }
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_k_grows_slowly() {
        assert_eq!(BlumUf::default_k(2), 2);
        assert!(BlumUf::default_k(16) >= 2);
        assert!(BlumUf::default_k(1 << 20) <= 7);
        assert!(BlumUf::default_k(1 << 20) >= 4);
    }

    #[test]
    fn basic_union_find() {
        let mut uf = BlumUf::with_elements(10);
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 2));
        uf.union(1, 3);
        assert!(uf.same_set(0, 2));
        assert_eq!(uf.set_count(), 7);
        uf.check_invariants();
    }

    #[test]
    fn chain_unions_keep_invariants() {
        let n = 200;
        let mut uf = BlumUf::with_k(n, 3);
        for x in 0..n - 1 {
            uf.union(x, x + 1);
            uf.check_invariants();
        }
        assert_eq!(uf.set_count(), 1);
        for x in 0..n {
            assert_eq!(uf.find(x), uf.find(0));
        }
    }

    #[test]
    fn tournament_unions_keep_invariants_and_height_bound() {
        let n = 256;
        let mut uf = BlumUf::with_k(n, 4);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            uf.check_invariants();
            stride *= 2;
        }
        assert_eq!(uf.set_count(), 1);
        // h <= 1 + log_k(n/2) = 1 + log_4(128) = 1 + 3.5 -> 4 (integer heights)
        assert!(
            uf.tree_height(0) <= 4,
            "height {} too tall",
            uf.tree_height(0)
        );
    }

    #[test]
    fn find_cost_bounded_by_height_plus_one() {
        let n = 1 << 12;
        let mut uf = BlumUf::with_elements(n);
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        let h = uf.tree_height(0) as u64;
        for x in (0..n).step_by(97) {
            let c0 = uf.cost();
            uf.find(x);
            assert!(uf.cost() - c0 <= h + 1);
        }
    }

    #[test]
    fn per_op_cost_is_worst_case_bounded() {
        // Every single union/find must cost O(k + log_k n); check an explicit
        // numeric bound over a mixed workload.
        let n = 1 << 10;
        let k = BlumUf::default_k(n);
        let mut uf = BlumUf::with_elements(n);
        let bound =
            (2 * k + 4 * ((n as f64).log2() / (k as f64).log2()).ceil() as usize + 8) as u64;
        let mut worst = 0u64;
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                let c0 = uf.cost();
                let ra = uf.find(base);
                let rb = uf.find(base + stride);
                uf.union_roots(ra, rb);
                worst = worst.max(uf.cost() - c0);
            }
            stride *= 2;
        }
        assert!(
            worst <= bound,
            "single op cost {worst} exceeds bound {bound}"
        );
    }

    #[test]
    fn mixed_random_ops_match_quickfind() {
        use crate::quickfind::QuickFind;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n = 120;
        let mut blum = BlumUf::with_k(n, 3);
        let mut reference = QuickFind::with_elements(n);
        for _ in 0..400 {
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                blum.union(x, y);
                reference.union(x, y);
            } else {
                assert_eq!(blum.same_set(x, y), reference.same_set(x, y));
            }
        }
        blum.check_invariants();
        assert_eq!(blum.set_count(), reference.set_count());
    }

    #[test]
    fn singleton_attach_into_tall_tree() {
        let mut uf = BlumUf::with_k(8, 2);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 2); // height 2 tree
        uf.union(0, 7); // singleton into tall tree
        uf.check_invariants();
        assert!(uf.same_set(1, 7));
    }
}
