//! Eager-relabeling ("quick-find") disjoint sets.

use crate::UnionFind;

/// Quick-find: every element stores its set id directly; `find` is one array
/// read, `union` relabels the smaller set (so total union work is
/// O(n lg n) over any sequence, but a single union costs up to n/2 units).
///
/// Used as the differential-testing reference for the cleverer structures
/// and as an ablation point in experiment E10.
pub struct QuickFind {
    id: Vec<u32>,
    /// members[s] lists the elements currently labeled s (only meaningful
    /// when s is a live set id).
    members: Vec<Vec<u32>>,
    sets: usize,
    cost: u64,
}

impl UnionFind for QuickFind {
    fn with_elements(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "element count too large");
        QuickFind {
            id: (0..n as u32).collect(),
            members: (0..n as u32).map(|x| vec![x]).collect(),
            sets: n,
            cost: 0,
        }
    }

    fn len(&self) -> usize {
        self.id.len()
    }

    fn id_bound(&self) -> usize {
        self.id.len()
    }

    fn find(&mut self, x: usize) -> usize {
        self.cost += 1;
        self.id[x] as usize
    }

    fn union_roots(&mut self, ra: usize, rb: usize) -> usize {
        debug_assert_eq!(self.id[self.members[ra][0] as usize] as usize, ra);
        debug_assert_eq!(self.id[self.members[rb][0] as usize] as usize, rb);
        self.cost += 1;
        if ra == rb {
            return ra;
        }
        let (small, big) = if self.members[ra].len() <= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let moved = std::mem::take(&mut self.members[small]);
        self.cost += moved.len() as u64;
        for &m in &moved {
            self.id[m as usize] = big as u32;
        }
        self.members[big].extend(moved);
        self.sets -= 1;
        big
    }

    fn set_count(&self) -> usize {
        self.sets
    }

    fn cost(&self) -> u64 {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_after_construction() {
        let mut uf = QuickFind::with_elements(4);
        for x in 0..4 {
            assert_eq!(uf.find(x), x);
        }
        assert_eq!(uf.set_count(), 4);
    }

    #[test]
    fn union_merges_and_keeps_counts() {
        let mut uf = QuickFind::with_elements(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same_set(0, 1));
        assert!(uf.same_set(3, 4));
        assert!(!uf.same_set(0, 3));
        uf.union(1, 4);
        assert!(uf.same_set(0, 3));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn self_union_is_noop() {
        let mut uf = QuickFind::with_elements(3);
        let r = uf.find(1);
        assert_eq!(uf.union_roots(r, r), r);
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn union_cost_tracks_smaller_side() {
        let mut uf = QuickFind::with_elements(8);
        // Build a set of size 4 and a set of size 1; union cost should move 1.
        uf.union(0, 1);
        uf.union(0, 2);
        uf.union(0, 3);
        let before = uf.cost();
        uf.union(0, 7);
        // 2 finds (2 units) + 1 overhead + 1 moved element
        assert_eq!(uf.cost() - before, 4);
    }
}
