//! The naive SLAP labeler the paper's Figure 3(b) defeats.
//!
//! "Passing labels to the right in a top to bottom fashion" without the
//! paper's union-forwarding machinery amounts to iterative minimum-label
//! relaxation: every round, each PE exchanges its column's current labels
//! with both neighbors (n words each way over word links) and re-relaxes its
//! column (vertical runs adopt the minimum of their pixels' labels and the
//! labels visible across the links). The process repeats until no label
//! changes anywhere.
//!
//! A label must make one round trip per *horizontal* hop of the shortest
//! path from a component's minimum pixel, so comb images (Fig. 3(b)) force
//! Θ(n) rounds at Θ(n) steps per round — Θ(n²) total — and spirals force
//! Θ(n²) rounds (Θ(n³) steps). Experiment E4 measures exactly this against
//! Algorithm CC's near-linear behaviour.

use slap_image::{Bitmap, LabelGrid};

/// Step accounting for the naive labeler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NaiveReport {
    /// Relaxation rounds until a full round passed with no change (the
    /// change-free confirmation round is included).
    pub rounds: u64,
    /// Machine steps: per round, `2·rows` link transfers + `rows` local
    /// relaxation work per PE (PEs run concurrently, so a round costs
    /// `3·rows` steps), plus one step per round for the global
    /// "anything changed?" wired-OR.
    pub steps: u64,
}

/// Labels `img` by iterative min-label propagation on the simulated SLAP.
/// Produces the paper's canonical labeling (minimum column-major position),
/// with the step count in the returned report.
pub fn naive_slap_labels(img: &Bitmap) -> (LabelGrid, NaiveReport) {
    let (rows, cols) = (img.rows(), img.cols());
    const BG: u32 = u32::MAX;
    // labels[c][r]
    let mut labels: Vec<Vec<u32>> = (0..cols)
        .map(|c| {
            (0..rows)
                .map(|r| {
                    if img.get(r, c) {
                        (c * rows + r) as u32
                    } else {
                        BG
                    }
                })
                .collect()
        })
        .collect();
    // initial vertical relaxation within each column
    for col in labels.iter_mut() {
        relax_column(col);
    }
    let mut rounds = 1u64; // the initial local relaxation round
    loop {
        rounds += 1;
        let mut changed = false;
        let snapshot = labels.clone(); // neighbor views are last round's labels
        for c in 0..cols {
            let col = &mut labels[c];
            let mut touched = false;
            for r in 0..rows {
                if col[r] == BG {
                    continue;
                }
                let mut best = col[r];
                if c > 0 && snapshot[c - 1][r] < best {
                    best = snapshot[c - 1][r];
                }
                if c + 1 < cols && snapshot[c + 1][r] < best {
                    best = snapshot[c + 1][r];
                }
                if best < col[r] {
                    col[r] = best;
                    touched = true;
                }
            }
            if touched {
                relax_column(col);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let steps = rounds * (3 * rows as u64 + 1);
    let mut out = LabelGrid::new_background(rows, cols);
    for (c, col) in labels.iter().enumerate() {
        for (r, &l) in col.iter().enumerate() {
            if l != BG {
                out.set(r, c, l);
            }
        }
    }
    (out, NaiveReport { rounds, steps })
}

/// The same naive labeler as a cycle-level [`slap_machine::PeProgram`] for the lock-step
/// executor — the workload experiment E11 uses to measure the simulator's
/// own multithreaded scaling ([`slap_machine::run_lockstep_threaded`]).
///
/// One relaxation round = `rows + 1` machine ticks: tick `k < rows` streams
/// `labels[k]` to both neighbors (one word per link per tick, as the
/// hardware allows) while capturing the neighbors' row `k−1`; the final tick
/// captures row `rows−1` and relaxes the column. The program runs a fixed
/// number of rounds (lock-step PEs cannot detect global convergence
/// locally); use [`naive_slap_labels`]' round count, or any horizon, and
/// compare labelings.
pub struct NaivePe {
    rows: usize,
    labels: Vec<u32>,
    nbr_left: Vec<u32>,
    nbr_right: Vec<u32>,
    tick: usize,
    rounds_left: u32,
}

impl NaivePe {
    /// Builds the PE program for column `pe` of `img`, running `rounds`
    /// relaxation rounds.
    pub fn new(img: &Bitmap, pe: usize, rounds: u32) -> Self {
        assert!(rounds >= 1, "need at least one relaxation round");
        let rows = img.rows();
        let labels = (0..rows)
            .map(|r| {
                if img.get(r, pe) {
                    (pe * rows + r) as u32
                } else {
                    u32::MAX
                }
            })
            .collect::<Vec<_>>();
        let mut me = NaivePe {
            rows,
            labels,
            nbr_left: vec![u32::MAX; rows],
            nbr_right: vec![u32::MAX; rows],
            tick: 0,
            rounds_left: rounds,
        };
        relax_column(&mut me.labels);
        me
    }

    /// The column's labels (final after the run).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    fn absorb(&mut self, io: &mut slap_machine::PeIo<u32>, row: usize) {
        if let Some(w) = io.recv_left() {
            self.nbr_left[row] = w;
        } else {
            self.nbr_left[row] = u32::MAX;
        }
        if let Some(w) = io.recv_right() {
            self.nbr_right[row] = w;
        } else {
            self.nbr_right[row] = u32::MAX;
        }
    }
}

impl slap_machine::PeProgram for NaivePe {
    type Word = u32;

    fn tick(&mut self, io: &mut slap_machine::PeIo<u32>) -> slap_machine::PeStatus {
        use slap_machine::PeStatus;
        let k = self.tick;
        if k < self.rows {
            if k >= 1 {
                self.absorb(io, k - 1);
            }
            io.send_left(self.labels[k]);
            io.send_right(self.labels[k]);
            self.tick += 1;
            PeStatus::Running
        } else {
            self.absorb(io, self.rows - 1);
            // relax: adopt per-row minima from the captured neighbor columns
            for r in 0..self.rows {
                if self.labels[r] == u32::MAX {
                    continue;
                }
                let m = self.labels[r].min(self.nbr_left[r]).min(self.nbr_right[r]);
                self.labels[r] = m;
            }
            relax_column(&mut self.labels);
            self.tick = 0;
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                PeStatus::Done
            } else {
                PeStatus::Running
            }
        }
    }
}

/// Runs [`NaivePe`] on the lock-step executor (optionally threaded) and
/// returns the resulting labeling. `rounds` fixes the relaxation horizon.
pub fn naive_slap_lockstep(img: &Bitmap, rounds: u32, threads: usize) -> LabelGrid {
    let (rows, cols) = (img.rows(), img.cols());
    let mut pes: Vec<NaivePe> = (0..cols).map(|pe| NaivePe::new(img, pe, rounds)).collect();
    let max_rounds = (rounds as u64 + 2) * (rows as u64 + 2) + 16;
    if threads <= 1 {
        slap_machine::run_lockstep(&mut pes, max_rounds);
    } else {
        slap_machine::run_lockstep_threaded(&mut pes, threads, max_rounds);
    }
    let mut out = LabelGrid::new_background(rows, cols);
    for (c, pe) in pes.iter().enumerate() {
        for (r, &l) in pe.labels().iter().enumerate() {
            if l != u32::MAX {
                out.set(r, c, l);
            }
        }
    }
    out
}

/// Sets every vertical run of foreground pixels to the minimum label in the
/// run (two sweeps).
fn relax_column(col: &mut [u32]) {
    const BG: u32 = u32::MAX;
    let n = col.len();
    let mut r = 0usize;
    while r < n {
        if col[r] == BG {
            r += 1;
            continue;
        }
        let top = r;
        let mut min = col[r];
        while r < n && col[r] != BG {
            min = min.min(col[r]);
            r += 1;
        }
        for item in col.iter_mut().take(r).skip(top) {
            *item = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, gen};

    #[test]
    fn matches_oracle_on_all_generators() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 20, 6).unwrap();
            let (labels, _) = naive_slap_labels(&img);
            assert_eq!(labels, fast_labels(&img), "workload {name}");
        }
    }

    #[test]
    fn vertical_structures_converge_immediately() {
        // vertical bars never exchange labels horizontally: two rounds
        // (relax + confirm)
        let img = gen::stripes_vertical(16, 16, 4, 2);
        let (_, report) = naive_slap_labels(&img);
        assert!(report.rounds <= 3, "vstripes took {} rounds", report.rounds);
    }

    #[test]
    fn labels_travel_one_column_per_round() {
        // even on the full image, the minimum label needs a round per column
        let img = gen::full(16, 16);
        let (_, report) = naive_slap_labels(&img);
        assert!(
            (16..=18).contains(&report.rounds),
            "full image took {} rounds",
            report.rounds
        );
    }

    #[test]
    fn comb_needs_linear_rounds() {
        let n = 64;
        let img = gen::double_comb(n, n, 2);
        let (labels, report) = naive_slap_labels(&img);
        assert_eq!(labels, fast_labels(&img));
        assert!(
            report.rounds as usize >= n / 4,
            "comb converged suspiciously fast: {} rounds",
            report.rounds
        );
    }

    #[test]
    fn serpentine_needs_quadratic_rounds() {
        let n = 48;
        let img = gen::serpentine(n, n, 3);
        let (labels, report) = naive_slap_labels(&img);
        assert_eq!(labels, fast_labels(&img));
        assert!(
            report.rounds as usize > 3 * n,
            "serpentine converged in only {} rounds",
            report.rounds
        );
    }

    #[test]
    fn lockstep_program_matches_plain_loop() {
        for name in ["random50", "comb", "fig3a"] {
            let img = gen::by_name(name, 20, 4).unwrap();
            let (labels, report) = naive_slap_labels(&img);
            let ls = naive_slap_lockstep(&img, report.rounds as u32, 1);
            assert_eq!(ls, labels, "workload {name}");
        }
    }

    #[test]
    fn lockstep_threaded_matches_sequential() {
        let img = gen::by_name("comb", 24, 4).unwrap();
        let (labels, report) = naive_slap_labels(&img);
        for threads in [2, 4] {
            let ls = naive_slap_lockstep(&img, report.rounds as u32, threads);
            assert_eq!(ls, labels, "threads={threads}");
        }
    }

    #[test]
    fn rounds_scale_quadratically_on_serpentines() {
        let r32 = naive_slap_labels(&gen::serpentine(32, 32, 3)).1.rounds as f64;
        let r64 = naive_slap_labels(&gen::serpentine(64, 64, 3)).1.rounds as f64;
        assert!(
            r64 / r32 > 3.0,
            "expected ~4x rounds on doubling: {r32} -> {r64}"
        );
    }
}
