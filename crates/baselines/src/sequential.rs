//! Sequential (uniprocessor) labelers: independent oracles and the `O(n²)`
//! references of the paper's introduction \[19, 7\].

use slap_image::{Bitmap, LabelGrid};
use slap_unionfind::{RankHalvingUf, UnionFind};

/// Classic two-pass raster labeling (Rosenfeld–Pfaltz): first pass assigns
/// provisional labels and records equivalences in a union–find; second pass
/// resolves. Output uses the paper's convention (minimum column-major
/// position per component).
pub fn two_pass_labels(img: &Bitmap) -> LabelGrid {
    let (rows, cols) = (img.rows(), img.cols());
    let mut provisional: Vec<u32> = vec![u32::MAX; rows * cols];
    let mut uf = RankHalvingUf::with_elements(rows * cols);
    // Pass 1 (row-major raster, 4-connectivity: look N and W).
    let mut n_provisional = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            if !img.get(r, c) {
                continue;
            }
            let west = c > 0 && img.get(r, c - 1);
            let north = r > 0 && img.get(r - 1, c);
            let idx = r * cols + c;
            match (west, north) {
                (false, false) => {
                    provisional[idx] = n_provisional as u32;
                    n_provisional += 1;
                }
                (true, false) => provisional[idx] = provisional[idx - 1],
                (false, true) => provisional[idx] = provisional[idx - cols],
                (true, true) => {
                    let w = provisional[idx - 1];
                    let n = provisional[idx - cols];
                    provisional[idx] = w;
                    if w != n {
                        uf.union(w as usize, n as usize);
                    }
                }
            }
        }
    }
    // Resolve equivalences; compute min column-major position per root.
    let mut min_pos: Vec<u32> = vec![u32::MAX; n_provisional.max(1)];
    for c in 0..cols {
        for r in 0..rows {
            if img.get(r, c) {
                let root = uf.find(provisional[r * cols + c] as usize);
                let pos = (c * rows + r) as u32;
                if pos < min_pos[root] {
                    min_pos[root] = pos;
                }
            }
        }
    }
    // Pass 2.
    let mut out = LabelGrid::new_background(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if img.get(r, c) {
                let root = uf.find(provisional[r * cols + c] as usize);
                out.set(r, c, min_pos[root]);
            }
        }
    }
    out
}

/// Scanline labeling in the style of \[19, 7\]: the image is consumed one
/// *column* at a time (the SLAP's natural scan order rotated 90°, which
/// makes the minimum-position labels line up with the paper's column-major
/// convention); runs of consecutive foreground pixels are the units, and a
/// union–find over runs records merges between adjacent columns. `O(n² α)`
/// overall.
pub fn scanline_labels(img: &Bitmap) -> LabelGrid {
    let (rows, cols) = (img.rows(), img.cols());
    // Runs of each column: (top_row, bottom_row inclusive, run_id)
    let mut uf = RankHalvingUf::with_elements(count_runs(img));
    let mut run_of_pixel: Vec<u32> = vec![u32::MAX; rows * cols];
    let mut next_run = 0usize;
    let mut prev_runs: Vec<(usize, usize, usize)> = Vec::new();
    for c in 0..cols {
        let mut cur_runs: Vec<(usize, usize, usize)> = Vec::new();
        let mut r = 0usize;
        while r < rows {
            if !img.get(r, c) {
                r += 1;
                continue;
            }
            let top = r;
            while r < rows && img.get(r, c) {
                r += 1;
            }
            let bot = r - 1;
            let id = next_run;
            next_run += 1;
            for j in top..=bot {
                run_of_pixel[j * cols + c] = id as u32;
            }
            cur_runs.push((top, bot, id));
        }
        // merge with overlapping runs of the previous column
        let mut pi = 0usize;
        for &(top, bot, id) in &cur_runs {
            while pi < prev_runs.len() && prev_runs[pi].1 < top {
                pi += 1;
            }
            let mut k = pi;
            while k < prev_runs.len() && prev_runs[k].0 <= bot {
                // overlap in rows => 4-adjacency across the column boundary
                uf.union(id, prev_runs[k].2);
                if prev_runs[k].1 <= bot {
                    k += 1;
                } else {
                    break;
                }
            }
        }
        prev_runs = cur_runs;
    }
    // min position per root, then write out
    let mut min_pos: Vec<u32> = vec![u32::MAX; next_run.max(1)];
    for c in 0..cols {
        for r in 0..rows {
            let run = run_of_pixel[r * cols + c];
            if run != u32::MAX {
                let root = uf.find(run as usize);
                let pos = (c * rows + r) as u32;
                if pos < min_pos[root] {
                    min_pos[root] = pos;
                }
            }
        }
    }
    let mut out = LabelGrid::new_background(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let run = run_of_pixel[r * cols + c];
            if run != u32::MAX {
                out.set(r, c, min_pos[uf.find(run as usize)]);
            }
        }
    }
    out
}

fn count_runs(img: &Bitmap) -> usize {
    let (rows, cols) = (img.rows(), img.cols());
    let mut runs = 0usize;
    for c in 0..cols {
        let mut inside = false;
        for r in 0..rows {
            let fg = img.get(r, c);
            if fg && !inside {
                runs += 1;
            }
            inside = fg;
        }
    }
    runs.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, gen};

    #[test]
    fn two_pass_matches_oracle_on_all_generators() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 3).unwrap();
            assert_eq!(two_pass_labels(&img), fast_labels(&img), "workload {name}");
        }
    }

    #[test]
    fn scanline_matches_oracle_on_all_generators() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 3).unwrap();
            assert_eq!(scanline_labels(&img), fast_labels(&img), "workload {name}");
        }
    }

    #[test]
    fn oracles_agree_on_rectangles() {
        let img = gen::uniform_random(17, 41, 0.5, 77);
        let a = two_pass_labels(&img);
        let b = scanline_labels(&img);
        let c = fast_labels(&img);
        assert_eq!(a, c);
        assert_eq!(b, c);
    }

    #[test]
    fn handles_nested_u_shapes() {
        let img = Bitmap::from_art(
            "#####\n\
             #...#\n\
             #.#.#\n\
             #...#\n\
             #####\n",
        );
        assert_eq!(two_pass_labels(&img), fast_labels(&img));
        assert_eq!(scanline_labels(&img), fast_labels(&img));
    }
}
