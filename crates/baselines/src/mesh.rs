//! The n²-processor mesh baselines of the paper's introduction.
//!
//! * [`mesh_min_propagation`] — exact 4-connected labeling by iterated
//!   minimum exchange with the four neighbors; converges in
//!   O(internal diameter) rounds (O(n) for compact shapes, Θ(n²) for
//!   spirals). One PE per pixel.
//! * [`levialdi_count`] — Levialdi's shrinking algorithm \[16\] on the
//!   `mesh-machine` simulator: each iteration applies the local shrink
//!   operator (components never merge or split) and a component is counted
//!   the moment it disappears as an isolated pixel. Components here are
//!   **8-connected** — Levialdi's operator is defined for 8-connectivity —
//!   so E6 uses it on workloads where the 4- and 8-connected counts
//!   coincide, or reports both counts (a documented substitution; see
//!   DESIGN.md).
//!
//! Both report machine rounds and the `rounds × n²` work product that the
//! paper's resource argument weighs against the SLAP's `n` processors.

use mesh_machine::{run_mesh, CellIo, CellProgram, CellStatus, Dir, MeshReport};
use slap_image::{Bitmap, LabelGrid};

/// Rounds/processors accounting for the plain-loop mesh labelers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeshRounds {
    /// Synchronous rounds until fixpoint (including the confirming round).
    pub rounds: u64,
    /// Processors used (`rows * cols`).
    pub processors: usize,
}

impl MeshRounds {
    /// Time × processors.
    pub fn work(&self) -> u64 {
        self.rounds * self.processors as u64
    }
}

/// Labels `img` by synchronous min-label propagation on an `rows × cols`
/// mesh (one PE per pixel): every round each foreground cell adopts the
/// minimum of its own and its 4-neighbors' labels. Output follows the
/// minimum-position convention, so it is oracle-exact.
pub fn mesh_min_propagation(img: &Bitmap) -> (LabelGrid, MeshRounds) {
    let (rows, cols) = (img.rows(), img.cols());
    const BG: u32 = u32::MAX;
    let mut cur: Vec<u32> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            if img.get(r, c) {
                (c * rows + r) as u32
            } else {
                BG
            }
        })
        .collect();
    let mut next = cur.clone();
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut changed = false;
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if cur[i] == BG {
                    continue;
                }
                let mut best = cur[i];
                if r > 0 && cur[i - cols] < best && cur[i - cols] != BG {
                    best = cur[i - cols];
                }
                if r + 1 < rows && cur[i + cols] < best {
                    best = best.min(mask_bg(cur[i + cols]));
                }
                if c > 0 && cur[i - 1] < best {
                    best = best.min(mask_bg(cur[i - 1]));
                }
                if c + 1 < cols && cur[i + 1] < best {
                    best = best.min(mask_bg(cur[i + 1]));
                }
                next[i] = best;
                changed |= best != cur[i];
            }
        }
        std::mem::swap(&mut cur, &mut next);
        if !changed {
            break;
        }
    }
    let mut out = LabelGrid::new_background(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if cur[r * cols + c] != BG {
                out.set(r, c, cur[r * cols + c]);
            }
        }
    }
    (
        out,
        MeshRounds {
            rounds,
            processors: rows * cols,
        },
    )
}

#[inline]
fn mask_bg(v: u32) -> u32 {
    v // BG is u32::MAX: never smaller than a real label
}

/// Levialdi shrinking cell. One shrink iteration takes two machine rounds:
///
/// * **even round `2i`**: (for `i > 0`) consume the east/west composite
///   words relayed last round — they complete the 3×3 snapshot of iteration
///   `i−1` (missing directions at the mesh border read as 0) — and apply the
///   shrink operator; then broadcast the (new) bit to all four neighbors;
/// * **odd round `2i+1`**: gather the four plain bits, relay the composite
///   `(bit, north, south)` east and west so diagonals are available next
///   round.
struct LevialdiCell {
    bit: bool,
    n: bool,
    s: bool,
    round: u32,
    total_rounds: u32,
    vanished_components: u32,
}

/// Packed link word: bit 0 = cell bit, bit 1 = its north input, bit 2 = its
/// south input.
type Packed = u8;

impl CellProgram for LevialdiCell {
    type Word = Packed;

    fn tick(&mut self, _r: usize, _c: usize, io: &mut CellIo<Packed>) -> CellStatus {
        if self.round.is_multiple_of(2) {
            if self.round > 0 {
                let wp = io.recv(Dir::West).unwrap_or(0);
                let ep = io.recv(Dir::East).unwrap_or(0);
                let w = wp & 1 != 0;
                let nw = wp & 2 != 0;
                let sw = wp & 4 != 0;
                let e = ep & 1 != 0;
                let ne = ep & 2 != 0;
                let se = ep & 4 != 0;
                let eight = self.n || self.s || e || w || ne || nw || se || sw;
                if self.bit && !eight {
                    // isolated pixel: its component disappears this iteration
                    self.vanished_components += 1;
                }
                self.bit = if self.bit {
                    w || self.n || nw
                } else {
                    w && self.n
                };
            }
            io.send(Dir::North, self.bit as u8);
            io.send(Dir::South, self.bit as u8);
            io.send(Dir::East, self.bit as u8);
            io.send(Dir::West, self.bit as u8);
        } else {
            self.n = io.recv(Dir::North).map(|p| p & 1 != 0).unwrap_or(false);
            self.s = io.recv(Dir::South).map(|p| p & 1 != 0).unwrap_or(false);
            // consume the east/west plain bits so the registers are clean for
            // next round's composites
            let _ = io.recv(Dir::East);
            let _ = io.recv(Dir::West);
            let packed = (self.bit as u8) | ((self.n as u8) << 1) | ((self.s as u8) << 2);
            io.send(Dir::East, packed);
            io.send(Dir::West, packed);
        }
        self.round += 1;
        if self.round >= self.total_rounds {
            CellStatus::Done
        } else {
            CellStatus::Running
        }
    }
}

/// Counts the 8-connected components of `img` with Levialdi shrinking on the
/// mesh simulator. Returns the count and the mesh accounting (2 machine
/// rounds per shrink iteration; `rows + cols + 2` iterations suffice because
/// the minimum anti-diagonal of every component advances each iteration).
pub fn levialdi_count(img: &Bitmap) -> (usize, MeshReport) {
    let (rows, cols) = (img.rows(), img.cols());
    let iterations = (rows + cols + 2) as u32;
    let mut cells: Vec<LevialdiCell> = (0..rows * cols)
        .map(|i| LevialdiCell {
            bit: img.get(i / cols, i % cols),
            n: false,
            s: false,
            round: 0,
            total_rounds: 2 * iterations,
            vanished_components: 0,
        })
        .collect();
    let report = run_mesh(rows, cols, &mut cells, 8 * (rows + cols + 4) as u64);
    let count = cells.iter().map(|c| c.vanished_components as usize).sum();
    (count, report)
}

/// Counts 8-connected components sequentially (reference for
/// [`levialdi_count`]).
pub fn count_components_8conn(img: &Bitmap) -> usize {
    let (rows, cols) = (img.rows(), img.cols());
    let mut seen = vec![false; rows * cols];
    let mut count = 0usize;
    let mut stack = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if !img.get(r, c) || seen[r * cols + c] {
                continue;
            }
            count += 1;
            seen[r * cols + c] = true;
            stack.push((r as isize, c as isize));
            while let Some((pr, pc)) = stack.pop() {
                for dr in -1..=1 {
                    for dc in -1..=1 {
                        let (nr, nc) = (pr + dr, pc + dc);
                        if nr < 0 || nc < 0 || nr >= rows as isize || nc >= cols as isize {
                            continue;
                        }
                        let (nr, nc) = (nr as usize, nc as usize);
                        if img.get(nr, nc) && !seen[nr * cols + nc] {
                            seen[nr * cols + nc] = true;
                            stack.push((nr as isize, nc as isize));
                        }
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, gen};

    #[test]
    fn min_propagation_matches_oracle() {
        for name in ["random50", "fig3a", "comb", "blobs", "checker"] {
            let img = gen::by_name(name, 24, 9).unwrap();
            let (labels, _) = mesh_min_propagation(&img);
            assert_eq!(labels, fast_labels(&img), "workload {name}");
        }
    }

    #[test]
    fn min_propagation_rounds_scale_with_diameter() {
        let compact = gen::full(32, 32);
        let (_, fast) = mesh_min_propagation(&compact);
        let twisty = gen::spiral(32, 32, 3);
        let (_, slow) = mesh_min_propagation(&twisty);
        assert!(fast.rounds < 70);
        assert!(slow.rounds > 100, "spiral took only {} rounds", slow.rounds);
    }

    #[test]
    fn levialdi_counts_simple_patterns() {
        for (art, expect) in [
            ("#", 1),
            (".", 0),
            ("#.#\n...\n#.#\n", 4), // diagonal-free isolated pixels
            ("###\n###\n", 1),
            ("##.\n##.\n..#\n", 1), // 8-connected via diagonal!
        ] {
            let img = Bitmap::from_art(art);
            let (count, _) = levialdi_count(&img);
            assert_eq!(count, expect, "art:\n{art}");
        }
    }

    #[test]
    fn levialdi_matches_8conn_reference_on_generators() {
        for name in ["random25", "random50", "blobs", "hstripes", "checker"] {
            let img = gen::by_name(name, 20, 13).unwrap();
            let (count, _) = levialdi_count(&img);
            assert_eq!(
                count,
                count_components_8conn(&img),
                "workload {name}:\n{img:?}"
            );
        }
    }

    #[test]
    fn levialdi_rounds_are_linear_in_side() {
        let img = gen::uniform_random(24, 24, 0.4, 2);
        let (_, report) = levialdi_count(&img);
        assert!(report.rounds <= 8 * (24 + 24 + 4) as u64);
        assert_eq!(report.processors, 24 * 24);
    }

    #[test]
    fn mesh_work_product_dwarfs_slap() {
        // the intro's resource argument in one assertion: n² PEs × Θ(n)
        // rounds is ω(n) × SLAP's n PEs
        let img = gen::uniform_random(32, 32, 0.5, 3);
        let (_, mesh) = mesh_min_propagation(&img);
        assert!(mesh.work() > 32 * 32 * 10);
    }
}
