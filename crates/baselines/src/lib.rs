//! Baseline component-labeling algorithms the paper compares against.
//!
//! * [`sequential`] — uniprocessor labelers: the classic two-pass
//!   (Rosenfeld–Pfaltz) raster algorithm and a scanline union–find labeler in
//!   the style of Schwartz–Sharir–Siegel \[19\] / Dillencourt–Samet–Tamminen
//!   \[7\] (the `O(n²)` sequential references cited in the introduction).
//!   These double as independent oracles for differential testing.
//! * [`naive_slap`] — the strawman the paper's Figure 3(b) is aimed at:
//!   iterative min-label propagation across the linear array, "passing labels
//!   to the right in a top to bottom fashion", which suffers Θ(n) sweeps on
//!   comb-like images (Θ(n²) steps and worse on spirals).
//! * [`divide_conquer`] — the previous state of the art on the SLAP
//!   (Alnuweiri–Prasanna \[2\], Helman–JáJá \[12\]): recursive halves with a
//!   boundary merge per level, Θ(n lg n) steps for every image. Experiment
//!   E5 compares its step counts against Algorithm CC.
//! * [`mesh`] — the n²-processor mesh algorithms of the introduction:
//!   min-label propagation (exact 4-connected labeling in O(diameter)
//!   rounds) and Levialdi's shrinking counter \[16\] on the `mesh-machine`
//!   simulator (E6's resource-tradeoff comparison).

#![warn(missing_docs)]

pub mod divide_conquer;
pub mod mesh;
pub mod naive_slap;
pub mod sequential;

pub use divide_conquer::{divide_conquer_labels, DcReport};
pub use naive_slap::{naive_slap_labels, NaiveReport};
pub use sequential::{scanline_labels, two_pass_labels};
