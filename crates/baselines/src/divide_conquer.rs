//! The previous state of the art on the SLAP: divide and conquer with
//! boundary merges, Θ(n lg n) for every image \[2, 12\].
//!
//! Scheme: every PE first labels its own column locally (runs get their top
//! pixel's position). Then `⌈lg n⌉` merge levels follow; at level `k`,
//! adjacent blocks of `2^(k-1)` columns merge pairwise:
//!
//! 1. the right block's leftmost column ships its `rows` boundary labels one
//!    hop left (`rows` words over one link — `rows` steps);
//! 2. the leader PE runs a sequential union–find over the ≤ `2·rows`
//!    boundary labels, producing a rename map (old label → merged component's
//!    minimum label);
//! 3. the rename map (≤ `rows` entries) is broadcast through the merged
//!    block — a pipelined flood costing `O(map + block width)` steps;
//! 4. every PE applies the renames to its column (`rows` map lookups).
//!
//! Each level costs `O(rows + 2^k)` steps regardless of the image, hence
//! Θ(n lg n) total on square images — the bound the paper beats. Labels
//! follow the minimum-position convention throughout, so the output is
//! oracle-exact.

use slap_image::{Bitmap, LabelGrid};
use slap_unionfind::{RankHalvingUf, UnionFind};
use std::collections::HashMap;

/// Step accounting for the divide-and-conquer labeler.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DcReport {
    /// Machine steps per merge level (makespan across that level's
    /// concurrent block merges).
    pub level_steps: Vec<u64>,
    /// Steps of the initial local column labeling.
    pub local_steps: u64,
    /// Total machine steps.
    pub steps: u64,
}

/// Labels `img` with the divide-and-conquer SLAP algorithm. Returns the
/// (oracle-exact) labeling and the step accounting.
pub fn divide_conquer_labels(img: &Bitmap) -> (LabelGrid, DcReport) {
    let (rows, cols) = (img.rows(), img.cols());
    const BG: u32 = u32::MAX;
    // local labeling: every vertical run gets its top pixel's position
    let mut labels: Vec<Vec<u32>> = (0..cols)
        .map(|c| {
            let mut col = vec![BG; rows];
            let mut r = 0usize;
            while r < rows {
                if !img.get(r, c) {
                    r += 1;
                    continue;
                }
                let top = r;
                while r < rows && img.get(r, c) {
                    r += 1;
                }
                let label = (c * rows + top) as u32;
                for item in col.iter_mut().take(r).skip(top) {
                    *item = label;
                }
            }
            col
        })
        .collect();
    let local_steps = rows as u64;
    let mut level_steps = Vec::new();
    let mut width = 1usize; // current block width
    while width < cols {
        let mut level_makespan = 0u64;
        let mut block_start = 0usize;
        while block_start < cols {
            let left_end = block_start + width; // first column of right block
            let block_end = (block_start + 2 * width).min(cols);
            if left_end >= cols {
                break;
            }
            // 1. ship right-boundary labels one hop left: rows words
            let mut steps = rows as u64;
            // 2. sequential merge at the leader over the boundary pair
            let (renames, merge_steps) = merge_boundary(img, &labels, left_end - 1, left_end, rows);
            steps += merge_steps;
            // 3. broadcast the rename map through the merged block
            steps += renames.len() as u64 + (block_end - block_start) as u64;
            // 4. apply renames locally (concurrent across the block's PEs)
            let mut apply_steps = 0u64;
            for col in labels.iter_mut().take(block_end).skip(block_start) {
                let mut units = 0u64;
                for l in col.iter_mut() {
                    units += 1;
                    if *l != BG {
                        if let Some(&n) = renames.get(l) {
                            *l = n;
                        }
                    }
                }
                apply_steps = apply_steps.max(units);
            }
            steps += apply_steps;
            level_makespan = level_makespan.max(steps);
            block_start += 2 * width;
        }
        level_steps.push(level_makespan);
        width *= 2;
    }
    let steps = local_steps + level_steps.iter().sum::<u64>();
    let mut out = LabelGrid::new_background(rows, cols);
    for (c, col) in labels.iter().enumerate() {
        for (r, &l) in col.iter().enumerate() {
            if l != BG {
                out.set(r, c, l);
            }
        }
    }
    (
        out,
        DcReport {
            level_steps,
            local_steps,
            steps,
        },
    )
}

/// Sequential union–find over the labels on the boundary between columns
/// `cl` and `cr`; returns the rename map (label → merged minimum) and the
/// units spent.
#[allow(clippy::needless_range_loop)] // `r` indexes the image and two label columns at once
fn merge_boundary(
    img: &Bitmap,
    labels: &[Vec<u32>],
    cl: usize,
    cr: usize,
    rows: usize,
) -> (HashMap<u32, u32>, u64) {
    let mut dense: HashMap<u32, usize> = HashMap::new();
    let mut values: Vec<u32> = Vec::new();
    let mut units = 0u64;
    let intern = |l: u32, dense: &mut HashMap<u32, usize>, values: &mut Vec<u32>| {
        *dense.entry(l).or_insert_with(|| {
            values.push(l);
            values.len() - 1
        })
    };
    let mut pairs = Vec::new();
    for r in 0..rows {
        units += 1;
        if img.get(r, cl) && img.get(r, cr) {
            let a = intern(labels[cl][r], &mut dense, &mut values);
            let b = intern(labels[cr][r], &mut dense, &mut values);
            units += 2;
            pairs.push((a, b));
        }
    }
    let mut uf = RankHalvingUf::with_elements(values.len().max(1));
    for (a, b) in pairs {
        uf.union(a, b);
    }
    // min label per root
    let mut min_of: Vec<u32> = vec![u32::MAX; values.len().max(1)];
    for (i, &v) in values.iter().enumerate() {
        let root = uf.find(i);
        if v < min_of[root] {
            min_of[root] = v;
        }
    }
    units += uf.cost();
    let mut renames = HashMap::new();
    for (i, &v) in values.iter().enumerate() {
        units += 1;
        let m = min_of[uf.find(i)];
        if m != v {
            renames.insert(v, m);
        }
    }
    units += uf.cost();
    (renames, units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, gen};

    #[test]
    fn matches_oracle_on_all_generators() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 8).unwrap();
            let (labels, _) = divide_conquer_labels(&img);
            assert_eq!(labels, fast_labels(&img), "workload {name}");
        }
    }

    #[test]
    fn handles_non_power_of_two_widths() {
        for cols in [1usize, 3, 5, 17, 33] {
            let img = gen::uniform_random(16, cols, 0.5, cols as u64);
            let (labels, _) = divide_conquer_labels(&img);
            assert_eq!(labels, fast_labels(&img), "cols={cols}");
        }
    }

    #[test]
    fn level_count_is_log_n() {
        let img = gen::uniform_random(32, 32, 0.5, 1);
        let (_, report) = divide_conquer_labels(&img);
        assert_eq!(report.level_steps.len(), 5); // lg 32
    }

    #[test]
    fn steps_scale_n_log_n_even_on_empty_images() {
        // The merge schedule runs regardless of content — the rigidity the
        // paper's algorithm avoids.
        let s32 = divide_conquer_labels(&slap_image::Bitmap::new(32, 32))
            .1
            .steps as f64;
        let s128 = divide_conquer_labels(&slap_image::Bitmap::new(128, 128))
            .1
            .steps as f64;
        let ratio = s128 / s32;
        // n lg n scaling: (128*7)/(32*5) = 5.6; allow slack
        assert!(
            (4.0..8.0).contains(&ratio),
            "unexpected scaling ratio {ratio}"
        );
    }

    #[test]
    fn rename_map_flows_to_whole_block() {
        // A long horizontal line: every merge renames the right block fully.
        let img = gen::stripes_horizontal(8, 32, 4, 1);
        let (labels, _) = divide_conquer_labels(&img);
        assert_eq!(labels, fast_labels(&img));
    }
}
