//! In-process tour of the `slapd` labeling service.
//!
//! ```sh
//! cargo run --release --example serve_roundtrip -- [workload] [n] [jobs]
//! # e.g.
//! cargo run --release --example serve_roundtrip -- random50 512 16
//! ```
//!
//! Binds a real `slapd` on an ephemeral port, then exercises the whole
//! service contract from a [`slap_serve::Client`] over real sockets:
//!
//! * **healthy jobs** — a batch of frames labeled over one pooled
//!   connection, each reply verified bit-identical to the fast engine;
//! * **typed rejections** — an over-budget frame answered with the
//!   `too-large` wire code (whose detail points at stream mode), not a
//!   dropped connection;
//! * **protocol-v2 streaming** — the same frames served as per-component
//!   feature records, verified against `component_features`, and the
//!   over-budget frame served after all by routing out-of-core with
//!   `O(cols + live)` carried state;
//! * **fault tolerance** — a garbage blob fired at the port while healthy
//!   jobs keep flowing;
//! * **graceful drain** — shutdown returns the final stats ledger, which
//!   the example prints.

use slap_repro::cc::engine::EngineKind;
use slap_repro::cc::features::{component_features, Features};
use slap_repro::image::{gen, Connectivity, LabelGrid};
use slap_repro::serve::{Client, ClientError, ServeConfig, Server, WireError};
use std::io::Write;
use std::net::TcpStream;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("random50");
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let cfg = ServeConfig {
        workers: 2,
        max_pixels: 1 << 24,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind slapd");
    let addr = server.local_addr();
    println!("slapd on {addr}: {jobs} x {workload} {n}x{n} jobs\n");

    // Healthy traffic: one pooled connection, bit-identical replies.
    let mut client = Client::connect(addr);
    let mut oracle_session = EngineKind::Fast.session(1);
    let mut oracle_grid = LabelGrid::new_background(1, 1);
    let t0 = Instant::now();
    for seed in 0..jobs as u64 {
        let img = gen::by_name(workload, n, seed).expect("workload");
        let ok = client.label(&img).expect("healthy job");
        if oracle_grid.rows() != n || oracle_grid.cols() != n {
            oracle_grid = LabelGrid::new_background(img.rows(), img.cols());
        }
        let stats = oracle_session.label_into(&img, Connectivity::Four, &mut oracle_grid);
        assert_eq!(ok.components, stats.components, "component count diverged");
        assert_eq!(ok.labels, oracle_grid.as_slice(), "labels diverged");
    }
    let dt = t0.elapsed();
    println!(
        "{jobs} job(s) ok, every reply bit-identical to the fast engine \
         ({:.1} jobs/s, {} retry(ies))",
        jobs as f64 / dt.as_secs_f64(),
        client.retries(),
    );

    // A job over the pixel budget comes back as a typed verdict whose
    // detail names the cap and the stream-mode escape hatch.
    let big = gen::by_name(workload, 1 << 13, 99).expect("workload");
    match client.label(&big) {
        Err(ClientError::Rejected { code, detail }) => {
            assert_eq!(code, WireError::TooLarge);
            println!("oversized job rejected with `{code}`: {detail}");
        }
        other => panic!("expected a too-large rejection, got {other:?}"),
    }

    // Protocol v2: the same frame as feature records — no grid on the
    // wire — checked against the whole-grid oracle.
    let img = gen::by_name(workload, n, 0).expect("workload");
    let ok = client.label_stream(&img).expect("streamed job");
    let mut got: Vec<(u32, Features)> = ok
        .records
        .iter()
        .map(|rec| (rec.label(ok.rows) as u32, Features::from(*rec)))
        .collect();
    got.sort_unstable_by_key(|&(label, _)| label);
    let labels = {
        let mut grid = LabelGrid::new_background(img.rows(), img.cols());
        oracle_session.label_into(&img, Connectivity::Four, &mut grid);
        grid
    };
    assert_eq!(
        got,
        component_features(&img, &labels, Connectivity::Four).per_component,
        "stream records diverged from component_features"
    );
    println!(
        "streamed {} feature record(s) for the {n}x{n} frame, all matching \
         component_features",
        ok.components
    );

    // And the frame the grid path refused? Stream mode serves it by
    // routing out-of-core — bounded carried state instead of a grid.
    let t1 = Instant::now();
    let ok = client.label_stream(&big).expect("out-of-core streamed job");
    println!(
        "the refused {0}x{0} frame streamed out-of-core: {1} component(s) \
         in {2:.2} s",
        1 << 13,
        ok.components,
        t1.elapsed().as_secs_f64(),
    );

    // Garbage on the wire never takes the service down.
    let mut vandal = TcpStream::connect(addr).expect("connect");
    let _ = vandal.write_all(b"!! this was never a frame !!");
    drop(vandal);
    let img = gen::by_name(workload, n, 7).expect("workload");
    client.label(&img).expect("healthy job right after garbage");
    println!("garbage bytes absorbed; the next healthy job still answered");

    drop(client);
    let stats = server.shutdown();
    println!(
        "\ndrained: {} connection(s), {} ok ({} streamed, {} out-of-core, \
         peak {} carried run(s)), {} typed rejection(s) \
         (too-large {}, bad-frame {}), 0 crashes by construction",
        stats.connections,
        stats.jobs_ok,
        stats.jobs_streamed,
        stats.jobs_ooc,
        stats.peak_carried_runs,
        stats.rejected(),
        stats.too_large,
        stats.bad_frame,
    );
}
