//! Particle analysis with Corollary 4 folds.
//!
//! Blob counting and per-blob measurement is the classic intermediate-level
//! vision task. After labeling, the paper's Corollary 4 machinery computes
//! any commutative/associative fold over each component's pixels in O(n)
//! extra SLAP time — here: pixel count (area), bounding box (min/max of row
//! and column), and centroid (sums of coordinates).
//!
//! ```text
//! cargo run --example particle_analysis -- [size] [seed]
//! ```

use slap_repro::cc::aggregate::{component_fold, MaxFold, MinFold, SumFold};
use slap_repro::cc::{label_components, CcOptions};
use slap_repro::image::gen;
use slap_repro::unionfind::TarjanUf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(64);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);

    let img = gen::blobs(n, n, n / 3 + 2, (n / 12).max(2), seed);
    println!(
        "particle field {n}x{n}, seed {seed}: {} foreground px ({:.1}%)\n",
        img.count_ones(),
        100.0 * img.density()
    );

    let run = label_components::<TarjanUf>(&img, &CcOptions::default());
    let labels = &run.labels;

    // Corollary 4 folds (each runs as two pipelined passes on the SLAP):
    let area = component_fold::<SumFold>(&img, labels, &|_, _| 1u64);
    let min_row = component_fold::<MinFold>(&img, labels, &|r, _| r as u64);
    let max_row = component_fold::<MaxFold>(&img, labels, &|r, _| r as u64);
    let min_col = component_fold::<MinFold>(&img, labels, &|_, c| c as u64);
    let max_col = component_fold::<MaxFold>(&img, labels, &|_, c| c as u64);
    let sum_row = component_fold::<SumFold>(&img, labels, &|r, _| r as u64);
    let sum_col = component_fold::<SumFold>(&img, labels, &|_, c| c as u64);

    println!("label  | area | bbox (rows x cols)    | centroid");
    println!("-------+------+-----------------------+---------");
    for &(label, px) in &area.per_component {
        let (r0, r1) = (
            min_row.value_of(label).unwrap(),
            max_row.value_of(label).unwrap(),
        );
        let (c0, c1) = (
            min_col.value_of(label).unwrap(),
            max_col.value_of(label).unwrap(),
        );
        let centroid_r = sum_row.value_of(label).unwrap() as f64 / px as f64;
        let centroid_c = sum_col.value_of(label).unwrap() as f64 / px as f64;
        println!(
            "{label:6} | {px:4} | [{r0:3},{r1:3}] x [{c0:3},{c1:3}] | ({centroid_r:5.1}, {centroid_c:5.1})"
        );
    }

    // Cross-check against the direct per-pixel statistics.
    for info in labels.component_stats() {
        assert_eq!(area.value_of(info.label), Some(info.pixels as u64));
        assert_eq!(min_row.value_of(info.label), Some(info.min_row as u64));
        assert_eq!(max_col.value_of(info.label), Some(info.max_col as u64));
    }

    let fold_steps = area.metrics.total_steps
        + min_row.metrics.total_steps
        + max_row.metrics.total_steps
        + min_col.metrics.total_steps
        + max_col.metrics.total_steps
        + sum_row.metrics.total_steps
        + sum_col.metrics.total_steps;
    println!(
        "\nSLAP time: {} steps to label + {} steps for all 7 folds ({:.2}x labeling)",
        run.metrics.total_steps,
        fold_steps,
        fold_steps as f64 / run.metrics.total_steps as f64
    );
}
