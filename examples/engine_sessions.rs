//! Warm-session batch labeling through the unified engine layer.
//!
//! ```sh
//! cargo run --release --example engine_sessions -- [workload] [n] [frames]
//! # e.g.
//! cargo run --release --example engine_sessions -- random50 1024 8
//! ```
//!
//! Opens one persistent session per registered engine
//! (`slap_cc::engine::registry()`), feeds every session the same batch of
//! frames twice — once cold-ish (first sight of each frame shape) and once
//! warm — and prints per-engine stats: components, run-universe size,
//! wall-clock per frame, and the scratch high-water mark, demonstrating
//!
//! * **dispatch from data**: the loop below names no engine; add one to the
//!   registry and it appears in the table;
//! * **bit-identity**: every engine's grid equals the BFS oracle's exactly;
//! * **reuse**: the second pass is faster and the `scratch_bytes` watermark
//!   stops moving — warm sessions label without allocating.

use slap_repro::cc::engine::registry;
use slap_repro::image::{gen, Bitmap, Connectivity, LabelGrid};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("random50");
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let frames: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);

    // A batch of same-family frames with varying seeds — the steady-state
    // serving shape: same dimensions, different content.
    let batch: Vec<Bitmap> = (0..frames)
        .map(|i| gen::by_name(workload, n, i as u64).expect("workload"))
        .collect();

    println!("batch: {frames} × {workload} {n}x{n}, 4-connectivity\n");
    println!(
        "{:<9} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "engine", "components", "runs", "cold ms/fr", "warm ms/fr", "scratch KiB"
    );

    let truth: Vec<LabelGrid> = {
        let mut session = slap_repro::cc::engine::EngineKind::Bfs.session(1);
        batch
            .iter()
            .map(|img| {
                let mut g = LabelGrid::new_background(1, 1);
                session.label_into(img, Connectivity::Four, &mut g);
                g
            })
            .collect()
    };

    for info in registry() {
        let mut session = info.kind.session(4);
        let mut grid = LabelGrid::new_background(1, 1);
        let mut last = Default::default();

        // Pass 1: every frame is new to the session — arenas grow to their
        // high-water marks here.
        let t0 = Instant::now();
        for (img, want) in batch.iter().zip(&truth) {
            last = session.label_into(img, Connectivity::Four, &mut grid);
            assert_eq!(&grid, want, "{} diverged from the oracle", info.kind);
        }
        let cold = t0.elapsed().as_secs_f64() * 1e3 / frames as f64;

        // Settle the arenas (double-buffered scratch can need a second
        // sight of each frame), then freeze the watermark.
        for img in &batch {
            session.label_into(img, Connectivity::Four, &mut grid);
        }
        let watermark = session.scratch_bytes();

        // Pass 2: warm — same frames, zero reallocation (watermark frozen).
        let t1 = Instant::now();
        for img in &batch {
            session.label_into(img, Connectivity::Four, &mut grid);
        }
        let warm = t1.elapsed().as_secs_f64() * 1e3 / frames as f64;
        assert_eq!(
            session.scratch_bytes(),
            watermark,
            "{}: a warm pass over seen frames must not allocate",
            info.kind
        );

        println!(
            "{:<9} {:>10} {:>10} {:>12.3} {:>12.3} {:>12}",
            info.kind.name(),
            last.components,
            last.runs,
            cold,
            warm,
            session.scratch_bytes() / 1024,
        );
    }

    println!(
        "\nevery engine produced bit-identical grids; warm passes reuse the\n\
         sessions' arenas (see BENCH_reuse.json for the recorded sweep)"
    );
}
