//! Adversarial gallery: the images the paper uses to argue hardness.
//!
//! Renders small versions of the Figure 3(a)/(b) families, the Theorem 5
//! even-rows family, and the tournament pattern, then shows how each one
//! stresses a different part of the machinery: naive label passing, the
//! union–find depth, or the link bandwidth.
//!
//! ```text
//! cargo run --example adversarial_gallery
//! ```

use slap_repro::baselines::naive_slap_labels;
use slap_repro::cc::bitserial::label_components_bitserial;
use slap_repro::cc::{label_components_kind, CcOptions};
use slap_repro::image::gen;
use slap_repro::unionfind::UfKind;

fn main() {
    let show = 12;

    println!("== Figure 3(a): nested brackets (merges far to the right) ==\n");
    println!("{}", gen::fig3a_nested_brackets(show, show).to_art());

    println!("== Figure 3(b): interleaved combs (labels zigzag vertically) ==\n");
    println!("{}", gen::double_comb(show, 2 * show, 2).to_art());

    println!("== Theorem 5 family: even rows with random run starts ==\n");
    println!(
        "{}",
        gen::even_rows(show, show, &[3, 0, 7, 12, 5, 9]).to_art()
    );

    println!("== Tournament: forces lg n union-find depth ==\n");
    println!("{}", gen::tournament(show, show, 2).to_art());

    let n = 96;
    println!("== Step counts at n = {n} ==\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "CC/tarjan", "CC/blum", "CC/ideal", "naive", "CC bit-link"
    );
    for name in ["fig3a", "comb", "evenrows", "tournament", "random50"] {
        let img = gen::by_name(name, n, 3).unwrap();
        let tarjan = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
        let blum = label_components_kind(&img, UfKind::Blum, &CcOptions::default());
        let ideal = label_components_kind(&img, UfKind::IdealO1, &CcOptions::default());
        let (nl, naive) = naive_slap_labels(&img);
        let bit = label_components_bitserial(&img, UfKind::Tarjan, &CcOptions::default());
        assert_eq!(tarjan.labels, nl);
        assert_eq!(tarjan.labels, blum.labels);
        assert_eq!(tarjan.labels, bit.labels);
        println!(
            "{name:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            tarjan.metrics.total_steps,
            blum.metrics.total_steps,
            ideal.metrics.total_steps,
            naive.steps,
            bit.metrics.total_steps
        );
    }
    println!(
        "\nReading guide: naive blows up on comb-like images (Fig. 3b's point); \
         bit-link costs ~lg n more (Theorem 5); ideal ~ O(n) (Lemma 2)."
    );
}
