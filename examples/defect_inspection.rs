//! Defect inspection: region measurement on the SLAP.
//!
//! The intermediate-level vision pipeline the paper's introduction motivates
//! does not stop at labeling — regions are then *measured* and classified.
//! This example plays a wafer-inspection scenario end to end on the
//! simulated machine:
//!
//! 1. synthesize a "wafer" with blob defects plus diagonal scratch lines;
//! 2. label it under 8-connectivity (scratches are diagonal chains, so
//!    4-connectivity would shatter them — the extension matters here);
//! 3. extract per-defect geometry with one Corollary-4 feature fold
//!    (area, bounding box, centroid, perimeter);
//! 4. classify defects by shape: compact blobs vs elongated scratches;
//! 5. count holes via the Euler number.
//!
//! ```text
//! cargo run --example defect_inspection
//! cargo run --example defect_inspection -- 48 7
//! ```

use slap_repro::cc::features::{component_features, euler_number};
use slap_repro::cc::{label_components, CcOptions, Connectivity};
use slap_repro::image::{gen, morph, Bitmap};
use slap_repro::unionfind::TarjanUf;

/// Blob defects plus diagonal scratches and sensor noise, deterministic per
/// seed.
fn synthesize_wafer(n: usize, seed: u64) -> Bitmap {
    let mut img = gen::blobs(n, n, n / 6 + 2, (n / 12).max(2), seed);
    // two diagonal scratches (pure diagonal chains: 8-connected, 4-shattered)
    for (start_col, len) in [(n / 5, n / 2), (3 * n / 5, n / 3)] {
        for i in 0..len {
            let (r, c) = (i + 2, start_col + i);
            if r < n && c < n {
                img.set(r, c, true);
            }
        }
    }
    // salt noise from the sensor (single isolated pixels)
    let salt = gen::uniform_random(n, n, 0.01, seed.wrapping_add(1));
    for (r, c) in salt.iter_ones_colmajor() {
        img.set(r, c, true);
    }
    img
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .first()
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(32);
    let seed: u64 = args
        .get(1)
        .map(|s| s.parse().expect("seed must be a number"))
        .unwrap_or(9);
    let raw = synthesize_wafer(n, seed);
    println!(
        "wafer {n}x{n} (seed {seed}), {:.1}% raw foreground\n",
        100.0 * raw.density()
    );

    // Low-level stage (constant memory per PE, the regime the paper's intro
    // describes): a 3x3 median filter removes the sensor's salt noise before
    // the intermediate-level labeling stage. Scratches are 1 px wide and
    // would not survive the median, so keep the original pixels that the
    // median confirms OR that line up diagonally (a closing under
    // 8-connectivity preserves them).
    let denoised = morph::median3x3(&raw);
    let mut img = raw.clone();
    for (r, c) in raw.iter_ones_colmajor() {
        let neighbors = Connectivity::Eight
            .neighbors(r, c, n, n)
            .filter(|&(nr, nc)| raw.get(nr, nc))
            .count();
        if neighbors == 0 && !denoised.get(r, c) {
            img.set(r, c, false); // isolated salt: drop
        }
    }
    println!(
        "denoised: {:.1}% foreground ({} salt pixels removed)\n",
        100.0 * img.density(),
        raw.count_ones() - img.count_ones()
    );
    if n <= 64 {
        println!("{}", img.to_art());
    }

    // Label on the SLAP under 8-connectivity so scratches stay whole.
    let opts = CcOptions {
        connectivity: Connectivity::Eight,
        ..CcOptions::default()
    };
    let run = label_components::<TarjanUf>(&img, &opts);
    println!(
        "labeled in {} SLAP steps on {} PEs ({} defect(s) under 8-connectivity)",
        run.metrics.total_steps,
        n,
        run.labels.component_count()
    );

    // One product-monoid fold (Corollary 4) measures every region at once.
    let feats = component_features(&img, &run.labels, Connectivity::Eight);
    println!(
        "feature fold: {} steps ({} prefix + {} suffix messages)\n",
        feats.metrics.total_steps,
        feats.metrics.prefix_pass.messages,
        feats.metrics.suffix_pass.messages
    );

    // Classify by shape: scratches are long and thin, blobs are compact.
    println!(
        "{:>8} {:>6} {:>9} {:>7} {:>8}  verdict",
        "label", "area", "bbox", "perim", "compact"
    );
    let mut scratches = 0;
    let mut blobs = 0;
    let mut dust = 0;
    for (label, f) in &feats.per_component {
        // A diagonal scratch fills almost none of its bounding box (a pure
        // diagonal of length k covers k of k² cells), while blob defects are
        // compact; extent separates them regardless of orientation.
        let verdict = if f.area < 4 {
            dust += 1;
            "dust"
        } else if f.extent() < 0.25 {
            scratches += 1;
            "SCRATCH"
        } else {
            blobs += 1;
            "blob"
        };
        println!(
            "{label:>8} {:>6} {:>4}x{:<4} {:>7} {:>8.2}  {verdict}",
            f.area,
            f.height(),
            f.width(),
            f.perimeter,
            f.compactness()
        );
    }
    println!("\nverdicts: {scratches} scratch(es), {blobs} blob(s), {dust} dust");

    let e = euler_number(&img, Connectivity::Eight);
    let holes = feats.per_component.len() as i64 - e.euler;
    println!(
        "Euler number {} -> {holes} enclosed hole(s) (void defects), {} steps",
        e.euler, e.steps
    );
}
