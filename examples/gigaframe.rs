//! Out-of-core labeling of a frame that is never held in memory: synthesize
//! a tall raw-PBM file on disk row by row, then label it through the
//! band-of-tiles scheduler with a band budget far below the frame height —
//! the working set is one band plus `O(cols + live components)` carried
//! seam state, no matter how tall the file grows:
//!
//! ```text
//! cargo run --release --example gigaframe
//! cargo run --release --example gigaframe -- 65536 2048
//! ```
//!
//! Arguments: `[rows] [cols]` (defaults: `16384 1024`). The frame is a
//! lattice of 4×4 squares at pitch 8, so the expected component count is
//! exactly `(rows/8) × (cols/8)` — an analytic ground truth that needs no
//! in-memory reference — and the example additionally cross-checks the
//! retired records against the row-at-a-time streaming engine reading the
//! same file (also bounded memory, independently implemented).

use slap_repro::image::{label_out_of_core, label_stream, pbm, Connectivity};
use std::io::{BufWriter, Write};
use std::time::Instant;

/// Rows resident per band: many band seams on the default frame.
const BAND_ROWS: usize = 250;

/// Lattice pitch and square side of the synthetic pattern.
const PITCH: usize = 8;
const SIDE: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dim = |i: usize, default: usize| {
        args.get(i)
            .map(|s| s.parse().expect("dimensions must be numbers"))
            .unwrap_or(default)
    };
    let rows = dim(0, 16384);
    let cols = dim(1, 1024);
    assert!(
        rows % PITCH == 0 && cols % PITCH == 0,
        "dimensions must be multiples of the pitch {PITCH}"
    );

    // Write the frame as raw P4, one packed row at a time — the full bitmap
    // never exists in this process.
    let path = std::env::temp_dir().join("slap_gigaframe.pbm");
    let t0 = Instant::now();
    {
        let file = std::fs::File::create(&path).expect("create frame file");
        let mut w = BufWriter::new(file);
        write!(w, "P4\n{cols} {rows}\n").expect("write header");
        let mut packed = vec![0u8; cols.div_ceil(8)];
        for r in 0..rows {
            packed.iter_mut().for_each(|b| *b = 0);
            if r % PITCH < SIDE {
                for c in (0..cols).filter(|c| c % PITCH < SIDE) {
                    packed[c / 8] |= 0x80 >> (c % 8); // P4 is MSB-first
                }
            }
            w.write_all(&packed).expect("write row");
        }
        w.flush().expect("flush frame");
    }
    let bytes = std::fs::metadata(&path).expect("stat frame").len();
    println!(
        "synthesized {rows}x{cols} frame: {:.1} MiB on disk in {:.0} ms",
        bytes as f64 / (1 << 20) as f64,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Label it band by band: BAND_ROWS resident rows against `rows` total.
    let file = std::fs::File::open(&path).expect("open frame");
    let mut reader = pbm::PbmRowReader::new(file).expect("PBM header");
    let t1 = Instant::now();
    let run = label_out_of_core(&mut reader, Connectivity::Four, BAND_ROWS, 2)
        .expect("label out of core");
    let elapsed = t1.elapsed();
    let s = &run.stats;
    println!(
        "labeled in {:.0} ms ({:.1} Mpx/s): {} band(s) of {} row(s), \
         {} component(s) retired",
        elapsed.as_secs_f64() * 1e3,
        s.pixels as f64 / elapsed.as_secs_f64() / 1e6,
        s.bands,
        s.band_rows,
        s.retired
    );
    println!(
        "carried state peaks: {} seam run(s), {} live component(s), \
         {} band run(s) — vs {} pixels in the frame",
        s.peak_carried_runs, s.peak_live_slots, s.peak_band_runs, s.pixels
    );

    // Analytic ground truth: one component per lattice cell.
    let expected = (rows / PITCH) as u64 * (cols / PITCH) as u64;
    assert_eq!(s.retired, expected, "lattice component count");
    assert!(
        run.components
            .iter()
            .all(|rec| rec.area == (SIDE * SIDE) as u64),
        "every square has area {}",
        SIDE * SIDE
    );
    // Independent cross-check: the streaming engine reads the same file.
    let file = std::fs::File::open(&path).expect("reopen frame");
    let mut reader = pbm::PbmRowReader::new(file).expect("PBM header");
    let stream = label_stream(&mut reader, Connectivity::Four).expect("stream frame");
    let mut a: Vec<_> = run.components;
    let mut b: Vec<_> = stream.components;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(
        a, b,
        "record-for-record agreement with the streaming engine"
    );
    println!(
        "verified: {expected} components match the lattice formula and the \
         streaming engine record for record"
    );
    let _ = std::fs::remove_file(&path);
}
