//! Quickstart: label one image on the simulated SLAP and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example quickstart -- comb 32
//! ```

use slap_repro::cc::{label_components, CcOptions};
use slap_repro::image::{bfs_labels, gen};
use slap_repro::unionfind::TarjanUf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("blobs");
    let n: usize = args
        .get(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(24);
    let img = gen::by_name(workload, n, 42).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {workload:?}; one of: {:?}",
            gen::WORKLOADS
        );
        std::process::exit(2);
    });

    println!(
        "workload {workload:?}, {n}x{n}, density {:.2}\n",
        img.density()
    );
    println!("{}", img.to_art());

    // Run the paper's algorithm with Tarjan union-find (weighted union +
    // path compression, the §3 default).
    let run = label_components::<TarjanUf>(&img, &CcOptions::default());

    // The labeling is exact: equal to the flood-fill oracle, each component
    // named by the minimum column-major position of its pixels.
    assert_eq!(run.labels, bfs_labels(&img));

    println!(
        "labeled (one letter per component):\n\n{}",
        run.labels.to_art()
    );

    let stats = run.labels.component_stats();
    println!("components: {}", stats.len());
    for info in stats.iter().take(10) {
        println!(
            "  label {:5}  {:4} px  bbox {}x{} at (r{}, c{})",
            info.label,
            info.pixels,
            info.height(),
            info.width(),
            info.min_row,
            info.min_col
        );
    }
    if stats.len() > 10 {
        println!("  ... and {} more", stats.len() - 10);
    }

    let m = &run.metrics;
    println!("\nSLAP machine time ({} PEs):", n);
    println!("  left pass   {:6} steps", m.left.makespan());
    println!("  right pass  {:6} steps", m.right.makespan());
    println!("  stitch      {:6} steps", m.stitch_makespan);
    println!(
        "  total       {:6} steps  ({:.1} steps per column)",
        m.total_steps,
        m.total_steps as f64 / n as f64
    );
    println!(
        "  messages: {} union-find, {} label",
        m.left.uf_pass.messages + m.right.uf_pass.messages,
        m.left.label_pass.messages + m.right.label_pass.messages
    );
}
