//! Strip-parallel labeling: generate a workload, label it on several worker
//! threads, verify bit-identity against the sequential engine, and summarize
//! the components.
//!
//! ```text
//! cargo run --release --example parallel_label
//! cargo run --release --example parallel_label -- random50 2048 4
//! ```
//!
//! Arguments: `[workload] [n] [threads]` (defaults: `blobs 512`, all
//! available cores). Wall-clock speedup needs real hardware parallelism;
//! bit-identity holds everywhere.

use slap_repro::image::{fast_labels_conn, gen, Connectivity, LabelGrid, ParallelLabeler};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("blobs");
    let n: usize = args
        .get(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(512);
    let threads: usize = args
        .get(2)
        .map(|s| s.parse().expect("threads must be a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    let img = gen::by_name(workload, n, 42).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {workload:?}; one of: {:?}",
            gen::WORKLOADS
        );
        std::process::exit(2);
    });
    println!(
        "workload {workload:?}, {n}x{n}, density {:.2}, {threads} thread(s)\n",
        img.density()
    );

    // Sequential reference first: the strip-parallel engine must reproduce
    // it bit for bit (labels are component minima — no decomposition can
    // change them).
    let t0 = Instant::now();
    let reference = fast_labels_conn(&img, Connectivity::Four);
    let seq = t0.elapsed();

    // Hot-loop shape: one reusable labeler + one reusable grid, so repeated
    // calls are allocation-free in steady state.
    let mut labeler = ParallelLabeler::new(threads);
    let mut labels = LabelGrid::new_background(1, 1);
    labeler.label_into(&img, Connectivity::Four, &mut labels); // warm-up
    let t1 = Instant::now();
    labeler.label_into(&img, Connectivity::Four, &mut labels);
    let par = t1.elapsed();

    assert_eq!(labels, reference, "parallel labels must be bit-identical");
    println!(
        "sequential fast engine : {:9.3} ms",
        seq.as_secs_f64() * 1e3
    );
    println!(
        "strip-parallel @ {threads:2}    : {:9.3} ms  ({:.2}x)",
        par.as_secs_f64() * 1e3,
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9)
    );

    let stats = labels.component_stats();
    println!("\ncomponents: {}", stats.len());
    for info in stats.iter().take(8) {
        println!(
            "  label {:7}  {:6} px  bbox {}x{} at (r{}, c{})",
            info.label,
            info.pixels,
            info.height(),
            info.width(),
            info.min_row,
            info.min_col
        );
    }
    if stats.len() > 8 {
        println!("  ... and {} more", stats.len() - 8);
    }
}
