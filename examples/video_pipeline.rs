//! Video pipeline: the Princeton Engine scenario that motivates the SLAP.
//!
//! The SLAP was built for real-time video (Chin et al. 1988; Knight et al.
//! 1992): frames stream through the array row by row, and intermediate-level
//! vision tasks — like component labeling — run per frame. This example
//! synthesizes a short sequence of frames with moving blobs, labels every
//! frame on the simulated SLAP, and reports per-frame component statistics
//! plus the machine-time budget, the way a video system designer would check
//! whether the algorithm fits in a frame interval.
//!
//! ```text
//! cargo run --example video_pipeline -- [frames] [size]
//! ```

use slap_repro::cc::{label_components, CcOptions};
use slap_repro::image::{Bitmap, LabelGrid};
use slap_repro::unionfind::TarjanUf;

/// A disc moving on a fixed linear trajectory, wrapping at the borders.
struct Particle {
    r: f64,
    c: f64,
    dr: f64,
    dc: f64,
    radius: usize,
}

fn render(particles: &[Particle], n: usize) -> Bitmap {
    let mut img = Bitmap::new(n, n);
    for p in particles {
        let (pr, pc, rad) = (p.r as isize, p.c as isize, p.radius as isize);
        for dr in -rad..=rad {
            for dc in -rad..=rad {
                if dr * dr + dc * dc <= rad * rad {
                    let r = (pr + dr).rem_euclid(n as isize) as usize;
                    let c = (pc + dc).rem_euclid(n as isize) as usize;
                    img.set(r, c, true);
                }
            }
        }
    }
    img
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let frames: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(8);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(48);

    // deterministic "scene": blobs with different speeds and sizes
    let mut particles: Vec<Particle> = (0..6)
        .map(|i| Particle {
            r: (i * 7 % n) as f64,
            c: (i * 13 % n) as f64,
            dr: 1.0 + i as f64 * 0.5,
            dc: 2.0 - i as f64 * 0.4,
            radius: 2 + i % 3,
        })
        .collect();

    println!("frame | components | largest px | SLAP steps | steps/col");
    println!("------+------------+------------+------------+----------");
    let mut worst_steps = 0u64;
    for f in 0..frames {
        let img = render(&particles, n);
        let run = label_components::<TarjanUf>(
            &img,
            &CcOptions {
                charge_load: true,
                ..CcOptions::default()
            },
        );
        let stats = run.labels.component_stats();
        let largest = stats.iter().map(|s| s.pixels).max().unwrap_or(0);
        worst_steps = worst_steps.max(run.metrics.total_steps);
        println!(
            "{f:5} | {:10} | {largest:10} | {:10} | {:8.1}",
            stats.len(),
            run.metrics.total_steps,
            run.metrics.total_steps as f64 / n as f64
        );
        sanity(&run.labels, &img);
        for p in &mut particles {
            p.r = (p.r + p.dr).rem_euclid(n as f64);
            p.c = (p.c + p.dc).rem_euclid(n as f64);
        }
    }
    // A real-time budget check in machine terms: at one step per pixel clock,
    // a frame interval affords about rows * cols steps of slack.
    let budget = (n * n) as u64;
    println!(
        "\nworst frame: {worst_steps} steps; per-frame budget at pixel rate: {budget} steps -> {}",
        if worst_steps <= budget {
            "fits"
        } else {
            "exceeds"
        }
    );
}

fn sanity(labels: &LabelGrid, img: &Bitmap) {
    labels
        .validate_against(img)
        .expect("labeling must be valid on every frame");
}
