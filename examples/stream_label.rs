//! Streaming labeling over piped PBM: serialize a workload to raw PBM
//! bytes, then label it back **one row at a time** through the streaming
//! engine — the image is never rebuilt in memory, exactly as if the bytes
//! arrived over a pipe:
//!
//! ```text
//! cargo run --release --example stream_label
//! cargo run --release --example stream_label -- maze 1024
//! slap gen blobs 4096 | slap stream            # the same flow between processes
//! ```
//!
//! Arguments: `[workload] [n]` (defaults: `blobs 512`). The example prints
//! the retirement trace — which components finished at which row — plus the
//! peak frontier footprint, and cross-checks the retired areas against the
//! whole-frame fast engine.

use slap_repro::image::{fast_labels_conn, gen, pbm, Connectivity, RowSource, StreamLabeler};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("blobs");
    let n: usize = args
        .get(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(512);
    let img = gen::by_name(workload, n, 42).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {workload:?}; one of: {:?}",
            gen::WORKLOADS
        );
        std::process::exit(2);
    });

    // The "pipe": raw P4 bytes, as `slap gen | slap stream` would move them.
    let mut pbm_bytes = Vec::new();
    pbm::write_raw(&img, &mut pbm_bytes).expect("serialize PBM");
    println!(
        "workload {workload:?}, {n}x{n}, {} PBM byte(s) streaming through\n",
        pbm_bytes.len()
    );

    // Consume the bytes incrementally: the reader hands over one packed row
    // per call, the labeler retires components as soon as they disconnect.
    let mut reader = pbm::PbmRowReader::new(&pbm_bytes[..]).expect("PBM header");
    let mut labeler = StreamLabeler::new(reader.cols(), Connectivity::Four);
    let mut words = Vec::new();
    let mut retired_total = 0u64;
    let t0 = Instant::now();
    while reader.next_row(&mut words).expect("PBM row") {
        labeler.push_row(&words);
        let row = labeler.stats().rows;
        for rec in labeler.drain_retired() {
            retired_total += 1;
            if retired_total <= 8 {
                println!(
                    "  row {:4}: retired label {:7}  {:6} px  bbox {}x{}",
                    row,
                    rec.label(reader.rows()),
                    rec.area,
                    rec.height(),
                    rec.width()
                );
            }
        }
    }
    let stats = labeler.finish();
    retired_total += labeler.drain_retired().count() as u64;
    let elapsed = t0.elapsed();
    if retired_total > 8 {
        println!("  ... and {} more", retired_total - 8);
    }

    println!(
        "\n{} component(s) from {} rows in {:.3} ms ({:.0} rows/s)",
        retired_total,
        stats.rows,
        elapsed.as_secs_f64() * 1e3,
        stats.rows as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "peak memory: {} frontier run(s) + {} union-find slot(s) — O(cols), \
         independent of the {} rows",
        stats.peak_frontier_runs, stats.peak_nodes, stats.rows
    );

    // The retired set must match the whole-frame engine exactly.
    let reference = fast_labels_conn(&img, Connectivity::Four);
    assert_eq!(retired_total as usize, reference.component_count());
    println!(
        "cross-check: component count matches the whole-frame fast engine ({})",
        reference.component_count()
    );
}
