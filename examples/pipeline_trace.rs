//! Space–time diagrams of the pipelined passes.
//!
//! Renders per-PE busy/idle/send timelines of `Union-Find-Pass` (Fig. 5) and
//! `Label-Pass` (Fig. 6) as ASCII Gantt charts. The diagrams show the
//! paper's timing arguments directly: Lemma 1's `O(n + i)` completion
//! diagonal, the idle wedge that §3's idle-compression variant harvests, and
//! how much of it the variant actually fills.
//!
//! ```text
//! cargo run --example pipeline_trace
//! cargo run --example pipeline_trace -- fig3a 32
//! ```

use slap_repro::cc::spacetime::left_pass_trace;
use slap_repro::cc::CcOptions;
use slap_repro::image::gen;
use slap_repro::machine::{render_gantt, span_totals};
use slap_repro::unionfind::TarjanUf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("comb");
    let n: usize = args
        .get(1)
        .map(|s| s.parse().expect("size must be a number"))
        .unwrap_or(24);
    let img = gen::by_name(workload, n, 42).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {workload:?}; one of: {:?}",
            gen::WORKLOADS
        );
        std::process::exit(2);
    });

    let opts = CcOptions::default();
    let tr = left_pass_trace::<TarjanUf>(&img, &opts);

    println!(
        "== Union-Find-Pass (Fig. 5) on {workload} {n}x{n}: {} steps, {} messages ==",
        tr.uf_report.makespan, tr.uf_report.messages
    );
    print!("{}", render_gantt(&tr.uf_spans, 96));

    println!(
        "\n== Label-Pass (Fig. 6): {} steps, {} messages ==",
        tr.label_report.makespan, tr.label_report.messages
    );
    print!("{}", render_gantt(&tr.label_spans, 96));

    // Aggregate utilization: how big is the idle wedge the §3 variant could
    // harvest?
    let mut busy = 0u64;
    let mut idle = 0u64;
    let mut send = 0u64;
    for spans in tr.uf_spans.iter().chain(tr.label_spans.iter()) {
        let t = span_totals(spans);
        busy += t.busy;
        idle += t.idle;
        send += t.send;
    }
    let total = busy + idle + send;
    println!(
        "\nutilization over both passes: {:.0}% busy, {:.0}% idle, {:.0}% link",
        100.0 * busy as f64 / total as f64,
        100.0 * idle as f64 / total as f64,
        100.0 * send as f64 / total as f64,
    );

    // The same pass with idle-time compression switched on: how much of the
    // wedge gets used?
    let idle_opts = CcOptions {
        idle_compression: true,
        ..opts
    };
    let idle_tr = left_pass_trace::<TarjanUf>(&img, &idle_opts);
    let used: u64 = idle_tr.uf_report.per_pe.iter().map(|p| p.idle_used).sum();
    let avail: u64 = idle_tr.uf_report.per_pe.iter().map(|p| p.idle).sum();
    println!(
        "idle compression (§3 variant): {used} of {avail} blocked steps spent on path compression"
    );
}
