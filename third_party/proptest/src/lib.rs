//! Offline stub of `proptest`.
//!
//! The sandboxed build cannot reach crates.io, so this crate implements the
//! exact API subset the workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, [`strategy::Strategy`] with
//! `prop_map`, range/tuple strategies, `collection::vec`, `sample::select`,
//! `bool::ANY`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with its case index and seed;
//!   the harness is fully deterministic (seed = FNV of test name ⊕ case
//!   index), so failures reproduce exactly on every run.
//! * **No persistence** (`proptest-regressions` files are never written).
//! * `prop_assert*` are plain `assert*` aliases — they panic instead of
//!   returning `Err`, which only forgoes shrinking, not soundness.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinator types.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Stub of `proptest::strategy::Strategy`: generation only, no value
    /// trees or shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing a constant value (stub of `proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // integer ranges delegate to the rand stub's uniform sampling, the same
    // layering as real proptest over rand
    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy for `any::<T>()` values.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: types with a canonical `any::<T>()` strategy.

    use crate::strategy::{AnyStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy covering their whole value space.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Returns the canonical strategy for `T` (stub of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod collection {
    //! Collection strategies (stub of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`], convertible from ranges and fixed sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// inclusive
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (stub of `proptest::sample`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies (stub of `proptest::bool`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Per-test configuration (stub of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving strategy generation (the `rand` stub's
    /// `StdRng`, seeded per test case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for one test case: seeded from the test name and case index,
        /// so every run of the suite generates identical inputs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, xor-folded with the case index
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `prop::` paths (`prop::collection::vec`, `prop::bool::ANY`, …), as
    /// re-exported by the real prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` block
/// becomes a normal `#[test]` running `cases` deterministic cases.
///
/// On failure the panic message carries the test name and case index; cases
/// are deterministic per (name, index), so reruns reproduce the failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let run = move || $body;
                    if let Err(payload) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest stub: {} failed at case {}/{} \
                             (deterministic; rerun reproduces it)",
                            stringify!($name),
                            case,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// `assert!` alias (real proptest returns `Err` to enable shrinking; the stub
/// has no shrinking, so panicking directly is equivalent).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` alias; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` alias; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
