//! Offline stub of `rand` (0.8-era API subset).
//!
//! The workspace only needs deterministic seeded pseudo-randomness for
//! workload generators and randomized tests — never cryptographic quality or
//! stream compatibility with the real `rand`. The generator is xoshiro256++
//! seeded via SplitMix64, the same construction the real `rand_xoshiro`
//! family uses.
//!
//! Provided surface (exactly what the workspace calls):
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! `Range`/`RangeInclusive` of the primitive integer types, and
//! [`Rng::gen_bool`].

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core uniform-word source, the stub's equivalent of `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, stub of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts, stub of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                // width fits u128 even for the full u64/i64 span (2^64)
                let width = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, stub of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, like rand's `f64` sampling
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, stub of `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub of `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_same_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_stays_in_bounds() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10_000 {
                let x: usize = rng.gen_range(3..17);
                assert!((3..17).contains(&x));
                let y: usize = rng.gen_range(1..=5);
                assert!((1..=5).contains(&y));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..1000 {
                assert!(!rng.gen_bool(0.0));
                assert!(rng.gen_bool(1.0));
            }
        }
    }
}
