//! Offline stub of `serde_derive`.
//!
//! The workspace builds in a sandbox with no crates.io access, and nothing in
//! it actually serializes (there is no `serde_json` or similar in the
//! dependency graph) — the `#[derive(Serialize, Deserialize)]` attributes on
//! report/config types only need to *compile*. These derives emit marker
//! impls for the matching stub traits in the sibling `serde` stub crate.
//!
//! Supported shape: non-generic `struct`s and `enum`s (everything the
//! workspace derives on). Generic items are rejected with a clear error so a
//! future real-serde swap is the fix, not silent misbehavior.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword and asserts
/// the item is non-generic.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => {
                        panic!("serde stub derive: expected type name after `{kw}`, got {other:?}")
                    }
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde stub derive: generic type `{name}` is not supported; \
                             extend third_party/serde_derive or vendor real serde"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde stub derive: no `struct` or `enum` found in input");
}

/// Stub `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Stub `#[derive(Deserialize)]`: emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
