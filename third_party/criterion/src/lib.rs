//! Offline stub of `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, `black_box` — over a plain
//! wall-clock harness: each benchmark is warmed up once, then timed over a
//! batch sized to the configured sample count, and the mean ns/iter is
//! printed as one line. No statistics, plots, or baselines; the point is
//! that `cargo bench` produces comparable numbers offline and `cargo bench
//! --no-run` type-checks every bench target.
//!
//! Honors `--bench` / `--test` harness arguments enough to not crash under
//! `cargo bench` and `cargo test`: when invoked with `--test` (cargo test
//! runs harness=false benches in test mode) the benches execute one
//! iteration only, as a smoke pass.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from const-folding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full timing run (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test` smoke pass).
    Smoke,
}

/// Benchmark identifier (stub of `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the measured closure; `iter` runs and times the workload.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// mean ns/iter of the last `iter` call
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up + smoke iteration
        black_box(routine());
        if self.mode == Mode::Smoke {
            self.last_ns = 0.0;
            return;
        }
        let iters = self.sample_size.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks (stub of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            last_ns: 0.0,
        };
        f(&mut b);
        self.criterion.report(&self.name, &id.id, b.last_ns);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            last_ns: 0.0,
        };
        f(&mut b, input);
        self.criterion.report(&self.name, &id.id, b.last_ns);
        self
    }

    /// Ends the group (output is flushed eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (stub of `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; cargo test passes `--test`
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke { Mode::Smoke } else { Mode::Bench },
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    fn report(&self, group: &str, id: &str, ns: f64) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match self.mode {
            Mode::Smoke => println!("bench {full} ... ok (smoke)"),
            Mode::Bench => println!("bench {full:<48} {ns:>14.1} ns/iter"),
        }
    }
}

/// Collects benchmark functions into one runner (stub of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (stub of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
