//! Offline stub of `crossbeam` providing `atomic::AtomicCell`.
//!
//! The lock-step executor uses `AtomicCell<Option<Word>>` as single-word
//! mailbox registers between worker threads. The real crate uses lock-free
//! atomics where the payload fits a machine word and a seqlock otherwise;
//! this stub uses a `std::sync::Mutex` per cell, which has identical
//! semantics (linearizable load/store/take) at some cost in throughput —
//! acceptable until real crossbeam can be vendored, and the threaded
//! executor's correctness tests don't care.

#![warn(missing_docs)]

/// Stub of `crossbeam::atomic`.
pub mod atomic {
    use std::sync::Mutex;

    /// A mutex-backed stand-in for `crossbeam::atomic::AtomicCell`.
    #[derive(Debug, Default)]
    pub struct AtomicCell<T> {
        inner: Mutex<T>,
    }

    impl<T> AtomicCell<T> {
        /// Creates a cell holding `value`.
        pub fn new(value: T) -> Self {
            AtomicCell {
                inner: Mutex::new(value),
            }
        }

        /// Replaces the contents with `value`.
        pub fn store(&self, value: T) {
            *self.inner.lock().expect("AtomicCell poisoned") = value;
        }

        /// Replaces the contents with `value`, returning the old contents.
        pub fn swap(&self, value: T) -> T {
            std::mem::replace(&mut *self.inner.lock().expect("AtomicCell poisoned"), value)
        }
    }

    impl<T: Default> AtomicCell<T> {
        /// Takes the contents, leaving `T::default()`.
        pub fn take(&self) -> T {
            self.swap(T::default())
        }
    }

    impl<T: Copy> AtomicCell<T> {
        /// Returns a copy of the contents.
        pub fn load(&self) -> T {
            *self.inner.lock().expect("AtomicCell poisoned")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn store_take_load() {
            let c = AtomicCell::new(None::<u64>);
            assert_eq!(c.load(), None);
            c.store(Some(7));
            assert_eq!(c.load(), Some(7));
            assert_eq!(c.take(), Some(7));
            assert_eq!(c.load(), None);
        }
    }
}
