//! Offline stub of `serde`.
//!
//! The sandboxed build has no crates.io access and nothing in the workspace
//! performs actual (de)serialization — the derives on report/config types
//! only need to compile. This stub provides marker traits with the same names
//! and the `derive` feature re-export, so swapping in real serde later is a
//! one-line `Cargo.toml` change with no source edits.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no serializer exists offline).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no deserializer exists offline).
pub trait Deserialize<'de> {}
