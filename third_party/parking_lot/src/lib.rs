//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` calling convention (non-poisoning `lock()`
//! returning the guard directly, `Condvar::wait(&mut guard)`) over the
//! standard-library primitives. Poisoning is translated to a panic, which is
//! the behavior the workspace's barrier wants anyway: a panicked lock-step
//! worker must take the whole run down, not deadlock it.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back in
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().expect("mutex poisoned")),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable with the `parking_lot::Condvar` API subset.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        guard.inner = Some(self.inner.wait(inner).expect("mutex poisoned"));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
